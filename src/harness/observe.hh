/**
 * @file
 * Observability knobs shared by the bench binaries: Chrome-trace
 * export, cycle-accounting profiles, perf-regression snapshots, and a
 * described counter dump. A bench that accepts `trace=` or `profile=`
 * re-runs one representative sweep point with the extra
 * instrumentation attached and writes the artifact next to its
 * tabular output; the re-run is separate from the sweep so the
 * sweep's stdout and stats stay byte-identical with and without it.
 *
 * Knobs (argv key=value, with MANNA_* environment fallbacks):
 *  - trace=<path> / MANNA_TRACE: write the Chrome trace JSON here
 *    ("" disables, the default);
 *  - trace_limit=<n> / MANNA_TRACE_LIMIT: trace-entry capacity
 *    (default 65536); entries past it are dropped and counted in the
 *    trace's `otherData.droppedEntries`;
 *  - profile=<path> / MANNA_PROFILE: write the per-tile x per-opcode
 *    x per-stall-reason cycle-accounting profile JSON here;
 *  - profile_top=<n> / MANNA_PROFILE_TOP: bottleneck entries in the
 *    profile's summary (default 5);
 *  - bench_json=<path> / MANNA_BENCH_JSON: write the schema-versioned
 *    perf-regression snapshot (BENCH_*.json) of the whole sweep here;
 *  - --dump-stats: pretty-print the aggregated sweep counters, with
 *    descriptions, to stdout after the table.
 *
 * See docs/OBSERVABILITY.md for worked examples.
 */

#ifndef MANNA_HARNESS_OBSERVE_HH
#define MANNA_HARNESS_OBSERVE_HH

#include <string>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

namespace manna
{
class Config;
}

namespace manna::harness
{

/** Chrome-trace export knobs (see file comment). */
struct TraceOptions
{
    std::string path;              ///< "" = tracing off
    std::size_t maxEntries = 65536;

    bool enabled() const { return !path.empty(); }
};

/** Parse trace= / trace_limit= (MANNA_TRACE / MANNA_TRACE_LIMIT). */
TraceOptions traceOptionsFromConfig(const Config &cfg);

/**
 * Simulate one benchmark point with a TraceLogger attached and write
 * the Chrome trace-event JSON to @p opts.path. No-op (returning
 * false) when tracing is disabled; warns and returns false when the
 * file cannot be written. The traced run goes through the compile
 * cache but its result is discarded — tracing never perturbs sweep
 * output.
 */
bool writeChromeTrace(const TraceOptions &opts,
                      const workloads::Benchmark &benchmark,
                      const arch::MannaConfig &config,
                      std::size_t steps, std::uint64_t seed = 1);

/** Cycle-accounting profile export knobs (see file comment). */
struct ProfileOptions
{
    std::string path;     ///< "" = profiling off
    std::size_t topN = 5; ///< bottleneck entries in the summary

    bool enabled() const { return !path.empty(); }
};

/** Parse profile= / profile_top= (MANNA_PROFILE /
 * MANNA_PROFILE_TOP). */
ProfileOptions profileOptionsFromConfig(const Config &cfg);

/**
 * Simulate one benchmark point and render its cycle-accounting
 * profile as JSON (schema "manna-profile-v1"):
 *  - "chip": tiles/steps/cycles/seconds/clock;
 *  - "dominant_stall": the stall reason with the most cycles summed
 *    across all tile engines (frontend issue excluded);
 *  - "bottlenecks": the top-N (engine, stall-reason) pairs by cycles
 *    across tiles, with their share of total engine cycles;
 *  - "roofline": achieved vs peak FLOP rate and differentiable-memory
 *    bandwidth, arithmetic intensity, and the resulting bound;
 *  - "counters": the full per-tile/per-opcode/per-stall registry.
 * Deterministic: no wall-clock enters the document, so the bytes are
 * identical for any sweep worker count.
 */
std::string renderProfileJson(const workloads::Benchmark &benchmark,
                              const arch::MannaConfig &config,
                              std::size_t steps, std::uint64_t seed,
                              std::size_t topN);

/** Simulate one representative point and write renderProfileJson()
 * to @p opts.path. No-op (returning false) when profiling is
 * disabled; warns and returns false when the file cannot be
 * written. */
bool writeProfile(const ProfileOptions &opts,
                  const workloads::Benchmark &benchmark,
                  const arch::MannaConfig &config, std::size_t steps,
                  std::uint64_t seed = 1);

/** Perf-regression snapshot knobs (see file comment). */
struct BenchJsonOptions
{
    std::string path; ///< "" = snapshot off

    bool enabled() const { return !path.empty(); }
};

/** Parse bench_json= (MANNA_BENCH_JSON). */
BenchJsonOptions benchJsonOptionsFromConfig(const Config &cfg);

/**
 * Render the perf-regression snapshot of a completed sweep (schema
 * "manna-bench-v1"): the job tallies and the aggregated counter
 * registry (both deterministic — identical for any worker count) plus
 * an informational "wall" section that scripts/bench_compare.py
 * ignores when diffing against a committed baseline.
 */
std::string renderBenchJson(const std::string &benchName,
                            const SweepReport &report);

/** Write renderBenchJson() to @p opts.path. No-op (returning false)
 * when disabled; warns and returns false on write failure. */
bool writeBenchJson(const BenchJsonOptions &opts,
                    const std::string &benchName,
                    const SweepReport &report);

/** If --dump-stats was given, pretty-print @p stats (sorted, aligned,
 * with descriptions) to stdout and return true. */
bool dumpStatsIfRequested(const Config &cfg, const StatRegistry &stats);

/** Merged harness-trace export knobs: harness_trace=<path> /
 * MANNA_HARNESS_TRACE renders every manna-events-v1 file of the run
 * (the process's own events= log plus any worker files a shard
 * coordinator collected) into one clock-aligned Chrome trace. */
struct HarnessTraceOptions
{
    std::string path; ///< "" = off

    bool enabled() const { return !path.empty(); }
};

/** Parse harness_trace= (MANNA_HARNESS_TRACE). */
HarnessTraceOptions harnessTraceOptionsFromConfig(const Config &cfg);

/**
 * Render @p paths (manna-events-v1 files) as one merged Chrome
 * trace-event JSON document: one trace pid per file (coordinator
 * first, in registration order), tids straight from the event
 * records, B/E pairs matched by span id into complete ("X") events,
 * instants as "i" events. Timestamps are wall-clock-aligned across
 * files via each header's wall/monotonic pair and the spawn-time
 * sync clamp (ParsedEventFile::alignedWallUs), zeroed at the
 * earliest file. Unreadable files are skipped with a warning; spans
 * left open by a killed process are closed at the file's last
 * timestamp and tagged "truncated".
 */
std::string
renderHarnessTrace(const std::vector<std::string> &paths);

/**
 * Close the process-wide event log (flushing the trailer), merge
 * every registered event file, and write the rendered Chrome trace
 * to @p opts.path. Returns false (no-op) when disabled or no event
 * log was armed; warns and returns false on write failure.
 */
bool writeHarnessTrace(const HarnessTraceOptions &opts);

/**
 * One-call wiring of the sweep-wide observability outputs every
 * sweep bench shares: bench_json= snapshot, --dump-stats counter
 * dump (both fed from @p report's aggregated registry), and the
 * merged harness_trace= Chrome trace of the events= span log.
 */
void applySweepObservability(const Config &cfg,
                             const std::string &benchName,
                             const SweepReport &report);

} // namespace manna::harness

#endif // MANNA_HARNESS_OBSERVE_HH
