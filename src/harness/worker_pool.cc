#include "worker_pool.hh"

#include <chrono>

#include "common/event_log.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::harness
{

namespace
{

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

WorkerPool::WorkerPool(std::size_t workers, bool steal)
    : steal_(steal)
{
    if (workers == 0)
        workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<WorkerState>());
}

WorkerPool::~WorkerPool()
{
    stop();
}

void
WorkerPool::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return;
    started_ = true;
    stopping_ = false;
    threads_.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
    watchdog_ = std::thread([this] { watchdogLoop(); });
}

void
WorkerPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_)
            return;
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &t : threads_)
        t.join();
    threads_.clear();
    if (watchdog_.joinable())
        watchdog_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

void
WorkerPool::submit(Task task)
{
    std::size_t target = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t best = workers_[0]->queue.size();
        for (std::size_t i = 1; i < workers_.size(); ++i) {
            if (workers_[i]->queue.size() < best) {
                best = workers_[i]->queue.size();
                target = i;
            }
        }
        workers_[target]->queue.push_back(std::move(task));
    }
    if (events::enabled())
        events::instant("job.enqueue",
                        strformat("worker=%zu", target));
    workCv_.notify_all();
}

void
WorkerPool::submitTo(std::size_t worker, Task task)
{
    MANNA_ASSERT(worker < workers_.size(), "bad pool worker index");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        workers_[worker]->queue.push_back(std::move(task));
    }
    if (events::enabled())
        events::instant("job.enqueue",
                        strformat("worker=%zu pinned=1", worker));
    workCv_.notify_all();
}

void
WorkerPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        for (const auto &w : workers_)
            if (w->busy || !w->queue.empty())
                return false;
        return true;
    });
}

std::size_t
WorkerPool::queuedTasks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &w : workers_)
        n += w->queue.size();
    return n;
}

std::size_t
WorkerPool::busyWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &w : workers_)
        if (w->busy)
            ++n;
    return n;
}

std::uint64_t
WorkerPool::steals() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return steals_;
}

std::uint64_t
WorkerPool::restarts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return restarts_;
}

std::uint64_t
WorkerPool::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

std::uint64_t
WorkerPool::watchdogCancellations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return watchdogCancellations_;
}

std::uint64_t
WorkerPool::executedBy(std::size_t worker) const
{
    MANNA_ASSERT(worker < workers_.size(), "bad pool worker index");
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_[worker]->executed;
}

void
WorkerPool::workerLoop(std::size_t self)
{
    WorkerState &me = *workers_[self];
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        Task task;
        bool stolen = false;
        std::size_t victim = self;
        if (!me.queue.empty()) {
            task = std::move(me.queue.front());
            me.queue.pop_front();
        } else {
            // Steal from the back of the largest non-empty queue —
            // the task its owner would reach last.
            std::size_t best = 0;
            for (std::size_t i = 0; steal_ && i < workers_.size();
                 ++i) {
                if (i == self)
                    continue;
                if (workers_[i]->queue.size() > best) {
                    best = workers_[i]->queue.size();
                    victim = i;
                }
            }
            if (best > 0) {
                task = std::move(workers_[victim]->queue.back());
                workers_[victim]->queue.pop_back();
                ++steals_;
                stolen = true;
            } else {
                if (stopping_)
                    return;
                workCv_.wait(lock);
                continue;
            }
        }
        if (fault::anyArmed() &&
            fault::shouldFire(fault::Site::PoolWorkerCrash)) {
            // The worker "dies" holding the task: put it back where
            // the restarted worker will pick it up first. Jobs are
            // pure, so the re-execution is byte-identical.
            me.queue.push_front(std::move(task));
            ++restarts_;
            lock.unlock();
            warn("pool worker %zu crashed (injected); restarting",
                 self);
            workCv_.notify_all();
            lock.lock();
            continue;
        }
        me.busy = true;
        me.runningCancel = task.cancel;
        me.runningDeadline =
            (task.cancel && task.timeoutSeconds > 0.0)
                ? monotonicSeconds() + task.timeoutSeconds
                : 0.0;
        me.cancelledByWatchdog = false;
        lock.unlock();
        if (stolen && events::enabled())
            events::instant("job.steal",
                            strformat("thief=%zu victim=%zu", self,
                                      victim));
        task.run();
        lock.lock();
        me.busy = false;
        me.runningCancel.reset();
        me.runningDeadline = 0.0;
        me.executed += 1;
        completed_ += 1;
        idleCv_.notify_all();
        if (stopping_ && me.queue.empty())
            return;
    }
}

void
WorkerPool::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        const double now = monotonicSeconds();
        for (auto &w : workers_) {
            if (w->busy && w->runningCancel &&
                w->runningDeadline > 0.0 &&
                now >= w->runningDeadline &&
                !w->cancelledByWatchdog) {
                w->runningCancel->cancel();
                w->cancelledByWatchdog = true;
                ++watchdogCancellations_;
            }
        }
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        lock.lock();
    }
}

} // namespace manna::harness
