/**
 * @file
 * Experiment harness: runs a benchmark on the Manna simulator and on
 * the baseline platform models, producing per-step time and energy
 * with per-kernel-group breakdowns. Every bench/ binary drives its
 * table or figure through this module so methodology is identical
 * across experiments.
 */

#ifndef MANNA_HARNESS_EXPERIMENT_HH
#define MANNA_HARNESS_EXPERIMENT_HH

#include <map>
#include <string>

#include "baselines/platform_model.hh"
#include "common/cancel.hh"
#include "compiler/compiled_model.hh"
#include "sim/chip.hh"
#include "workloads/benchmarks.hh"
#include "workloads/tasks.hh"

namespace manna::harness
{

/** Per-step result of a Manna simulation. */
struct MannaResult
{
    sim::RunReport report;
    double secondsPerStep = 0.0;
    double joulesPerStep = 0.0;
    std::map<mann::KernelGroup, double> groupSeconds; ///< per step
};

/** Per-step result of a baseline platform model. */
struct BaselineResult
{
    baselines::PlatformStepCost step;
    double secondsPerStep = 0.0;
    double joulesPerStep = 0.0;

    /**
     * The same cost data as a registry, so baseline-vs-Manna views
     * (fig2) read one uniform counter interface:
     * "baseline.seconds"/"baseline.joules" plus
     * "baseline.<group>.{seconds,joules,utilization}" per kernel
     * group (group names with dashes mapped to underscores, e.g.
     * "baseline.key_similarity.seconds").
     */
    StatRegistry stats;
};

/**
 * Simulate @p steps time steps of a benchmark on the given Manna
 * configuration, driving it with the benchmark's task generator.
 * Compilation goes through the process-wide compile cache.
 */
MannaResult simulateManna(const workloads::Benchmark &benchmark,
                          const arch::MannaConfig &config,
                          std::size_t steps, std::uint64_t seed = 1,
                          sim::Fidelity fidelity = sim::Fidelity::Cycle);

/**
 * Simulation phase of simulateManna() for an already-compiled model:
 * pure and log-free, so sweep workers can run it concurrently
 * (capacity warnings stay on the model for the caller to report).
 *
 * @p cancel, when non-null, is polled cooperatively by the chip; a
 * fired token makes the simulation throw SimError (used by the sweep
 * runner's per-job watchdog). A token that never fires has no effect
 * on results.
 *
 * @p trace, when non-null, is attached to every tile for the run and
 * records each executed instruction (see sim::TraceLogger and
 * docs/OBSERVABILITY.md); it has no effect on results or timing.
 *
 * @p fidelity selects cycle-accurate or calibrated-fast execution
 * (sim/fidelity.hh); tensor outputs are bit-identical either way.
 */
MannaResult runCompiled(const workloads::Benchmark &benchmark,
                        const compiler::CompiledModel &model,
                        std::size_t steps, std::uint64_t seed = 1,
                        const CancelToken *cancel = nullptr,
                        sim::TraceLogger *trace = nullptr,
                        sim::Fidelity fidelity = sim::Fidelity::Cycle);

/** Evaluate a benchmark on a baseline platform model. */
BaselineResult evaluateBaseline(const workloads::Benchmark &benchmark,
                                const baselines::PlatformModel &model);

/** GPU and CPU models used across the experiments. */
const baselines::PlatformModel &gpu1080Ti();
const baselines::PlatformModel &gpu2080Ti();
const baselines::PlatformModel &cpuXeon();

/**
 * Default step count for the simulated experiments (enough for
 * steady-state per-step metrics while keeping the full suite fast).
 * Override with the MANNA_STEPS environment variable.
 */
std::size_t defaultSteps();

} // namespace manna::harness

#endif // MANNA_HARNESS_EXPERIMENT_HH
