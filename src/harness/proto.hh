/**
 * @file
 * Wire protocol of the simulation service (docs/SERVICE.md): length-
 * prefixed, checksummed binary frames plus the text codecs for job
 * specifications and results that ride inside them.
 *
 * Frame layout (documented alongside MNPR/MNCA in docs/FORMATS.md):
 *
 *   offset  size  field
 *   0       4     magic: "MNRQ" (client->daemon) / "MNRS" (reply)
 *   4       2     protocol version (little-endian, currently 1)
 *   6       2     message type (MsgType, little-endian)
 *   8       4     payload length in bytes (little-endian)
 *   12      8     FNV-1a-64 checksum over bytes [0,12) + payload
 *   20      N     payload
 *
 * The same validation discipline as the binary program/cache
 * containers applies: a truncated header or payload is *torn* (the
 * peer died or the write was interrupted) and a checksum or magic
 * mismatch is *bad* (corruption, a foreign protocol) — both close the
 * connection, neither is ever trusted.
 *
 * Job payloads carry every field the daemon needs to reconstruct a
 * SweepJob (benchmark shape, task, Manna config, steps, seed,
 * fidelity) in a fixed field order, with floating-point values as C
 * hexfloats, plus the client-computed job fingerprint. The daemon
 * recomputes the fingerprint after decoding and rejects a mismatch,
 * so a config field added without a codec update fails loudly instead
 * of silently simulating the wrong point. Results reuse the resume
 * journal's hexfloat-exact encodeResult()/decodeResult() payloads
 * (harness/journal.hh), which is what makes a daemon-computed sweep
 * byte-identical to an in-process one.
 */

#ifndef MANNA_HARNESS_PROTO_HH
#define MANNA_HARNESS_PROTO_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "harness/sweep.hh"

namespace manna::harness::proto
{

/** "MNRQ" / "MNRS" as little-endian u32s. */
inline constexpr std::uint32_t kRequestMagic = 0x51524e4du;
inline constexpr std::uint32_t kResponseMagic = 0x53524e4du;

inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;

/** Upper bound on a payload; larger lengths are rejected as garbage
 * before any allocation happens. */
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;

/** Message types. Requests ride in MNRQ frames, responses in MNRS
 * frames; the numeric ranges do not overlap so a misdirected frame
 * cannot alias a valid one. */
enum class MsgType : std::uint16_t
{
    // client -> daemon
    Hello = 1,    ///< handshake: protocol + client name
    Submit = 2,   ///< one job spec (id, priority, encodeJob payload)
    Cancel = 3,   ///< abandon a submitted job by client-side id
    Ping = 4,     ///< liveness probe
    Stats = 5,    ///< request the daemon's counter snapshot
    Shutdown = 6, ///< ask the daemon to exit gracefully

    // daemon -> client
    HelloOk = 32,    ///< handshake accepted: pool/limits/events path
    Accepted = 33,   ///< job admitted to the queue
    RetryAfter = 34, ///< admission control: queue full, retry later
    Result = 35,     ///< completed job (encodeResult payload)
    JobFailed = 36,  ///< job resolved to a structured error
    Pong = 37,       ///< ping/shutdown acknowledgement
    StatsReport = 38,///< manna-daemon-stats-v1 JSON
    Reject = 39,     ///< protocol-level refusal; connection closes
};

/** One decoded frame. */
struct Frame
{
    bool request = true; ///< MNRQ (true) or MNRS (false)
    MsgType type = MsgType::Ping;
    std::string payload;
};

/** How reading a frame off a connection resolved. */
enum class ReadStatus
{
    Ok,   ///< frame decoded and verified
    Eof,  ///< clean close before any header byte
    Torn, ///< peer vanished mid-frame (short header/payload)
    Bad,  ///< magic/version/length/checksum violation
};

/** Serialize a frame (header + checksum + payload). */
std::string encodeFrame(const Frame &frame);

/**
 * Decode and verify one frame from an in-memory buffer (unit-test /
 * replay path). @p expectRequest selects the magic the receiver
 * requires. Returns Ok/Torn/Bad; @p err (optional) gets a diagnostic
 * for Bad frames.
 */
ReadStatus decodeFrame(std::string_view bytes, bool expectRequest,
                       Frame *out, std::string *err = nullptr);

/** Read one frame off @p fd (blocking). Same contract as
 * decodeFrame, plus Eof for a cleanly closed connection. */
ReadStatus readFrame(int fd, bool expectRequest, Frame *out,
                     std::string *err = nullptr);

/**
 * Encode and send one frame. When @p allowTear is true the armed
 * `server.frame.torn` fault site may fire, truncating the write mid-
 * frame (the daemon passes true on its streaming path so chaos runs
 * can prove clients survive a torn result). Returns false when the
 * peer is gone or the tear fired.
 */
bool writeFrame(int fd, const Frame &frame, bool allowTear = false);

/** Append a length-prefixed field ("<len>:<bytes>") to @p out — the
 * only payload field shape that may contain spaces. */
void appendSized(std::string &out, std::string_view bytes);

/**
 * Sequential reader over a space-separated frame payload. All
 * accessors are no-ops once a parse error is recorded; check ok()
 * after the last field. Numeric parses reject trailing garbage.
 */
class FieldReader
{
  public:
    explicit FieldReader(std::string_view s) : s_(s) {}

    bool ok() const { return !failed_; }
    const std::string &error() const { return err_; }
    void fail(const std::string &why);

    /** Next space-delimited token; fails at end of payload. */
    std::string_view token();

    /** Consume a token and fail unless it equals @p kw. */
    void expect(const char *kw);

    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool boolean() { return u64() != 0; }

    /** Consume a "<len>:<bytes>" field written by appendSized(). */
    std::string sized();

  private:
    std::string_view s_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string err_;
};

/**
 * Serialize everything a daemon needs to execute @p job: benchmark
 * name/task, MANN + Manna configs field by field (hexfloats for
 * floating-point), steps, seed, fidelity, and the job fingerprint.
 * Single line, no trailing newline.
 */
std::string encodeJob(const SweepJob &job);

/**
 * Parse an encodeJob() payload, recompute the fingerprint of the
 * decoded job, and verify it matches the transmitted one. Returns
 * nullopt (with a diagnostic in @p err if non-null) on malformed
 * input, unknown field-format versions, or a fingerprint mismatch.
 */
std::optional<SweepJob> decodeJob(std::string_view text,
                                  std::string *err = nullptr);

} // namespace manna::harness::proto

#endif // MANNA_HARNESS_PROTO_HH
