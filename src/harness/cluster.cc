#include "cluster.hh"

#include "common/error.hh"
#include "common/strutil.hh"
#include "common/types.hh"
#include "compiler/compile_cache.hh"

namespace manna::harness
{

void
ClusterConfig::validate() const
{
    if (chips == 0 || !isPowerOfTwo(chips))
        throw ConfigError(strformat(
            "cluster size must be a nonzero power of two (got %zu)",
            chips));
    if (linkGBs <= 0.0 || hopSeconds < 0.0)
        throw ConfigError(strformat(
            "invalid cluster interconnect parameters (linkGBs=%g, "
            "hopSeconds=%g)",
            linkGBs, hopSeconds));
}

ClusterResult
evaluateCluster(const workloads::Benchmark &benchmark,
                const arch::MannaConfig &chipConfig,
                const ClusterConfig &cluster, std::size_t steps,
                std::uint64_t seed)
{
    cluster.validate();

    // Each chip's share of the memory rows, kept tile-aligned.
    workloads::Benchmark share = benchmark;
    share.config.memN = std::max<std::size_t>(
        roundUp(benchmark.config.memN / cluster.chips,
                chipConfig.numTiles),
        chipConfig.numTiles);

    const MannaResult perChip =
        simulateManna(share, chipConfig, steps, seed);

    ClusterResult result;
    result.chips = cluster.chips;
    result.secondsPerStep = perChip.secondsPerStep;
    result.joulesPerStep =
        perChip.joulesPerStep * static_cast<double>(cluster.chips);
    if (cluster.chips == 1)
        return result;

    // Inter-chip overhead per step: every reduce/broadcast of the
    // compiled step also crosses the chip-to-chip tree. The cache
    // shares this compile with the per-chip simulation above (same
    // scaled-down shape), so varying only the cluster parameters
    // compiles nothing new.
    const auto model = compiler::compileCached(share.config, chipConfig);
    const std::size_t depth = log2Ceil(cluster.chips);
    double comm = 0.0;
    for (const auto &segment : model->stepSegments) {
        for (const auto &inst :
             segment.tilePrograms[0].instructions()) {
            if (inst.op != isa::Opcode::Reduce &&
                inst.op != isa::Opcode::Broadcast)
                continue;
            const std::size_t words = inst.op == isa::Opcode::Reduce
                                          ? inst.srcA.len
                                          : inst.dst.len;
            ++result.commEvents;
            result.commWords += words;
            comm += static_cast<double>(depth) *
                    (cluster.hopSeconds +
                     static_cast<double>(words) * kWordBytes /
                         (cluster.linkGBs * 1e9));
        }
    }
    result.commSecondsPerStep = comm;
    result.secondsPerStep += comm;
    // Link energy is negligible next to the chips; ignore.
    return result;
}

} // namespace manna::harness
