#include "journal.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::harness
{

namespace
{

/** Exact double serialization: C hexfloat round-trips bit patterns. */
std::string
hexDouble(double v)
{
    return strformat("%a", v);
}

/**
 * Sequential token consumer over one journal line. Every accessor
 * reports failure through ok_ instead of throwing, so a torn line is
 * just "not a record".
 */
class TokenReader
{
  public:
    explicit TokenReader(std::string_view line)
        : tokens_(splitWhitespace(line))
    {}

    bool ok() const { return ok_; }
    bool done() const { return next_ >= tokens_.size(); }

    std::string token()
    {
        if (done()) {
            ok_ = false;
            return "";
        }
        return tokens_[next_++];
    }

    bool literal(const char *expected)
    {
        if (token() != expected)
            ok_ = false;
        return ok_;
    }

    std::uint64_t u64(int base = 10)
    {
        const std::string t = token();
        if (!ok_)
            return 0;
        errno = 0;
        char *end = nullptr;
        const std::uint64_t v = std::strtoull(t.c_str(), &end, base);
        if (errno != 0 || end == t.c_str() || *end != '\0')
            ok_ = false;
        return v;
    }

    double f64()
    {
        const std::string t = token();
        if (!ok_)
            return 0.0;
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(t.c_str(), &end);
        if (errno != 0 || end == t.c_str() || *end != '\0')
            ok_ = false;
        return v;
    }

  private:
    std::vector<std::string> tokens_;
    std::size_t next_ = 0;
    bool ok_ = true;
};

/** The v3 per-line checksum: FNV-1a over the line bytes before the
 * " k <hex>" suffix (fingerprint and payload both covered). */
std::uint64_t
lineChecksum(std::string_view body)
{
    Fnv1a h;
    h.bytes(body.data(), body.size());
    return h.value();
}

bool
isHex16(std::string_view s)
{
    if (s.size() != 16)
        return false;
    for (char c : s)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
              (c >= 'A' && c <= 'F')))
            return false;
    return true;
}

/**
 * Parse one full journal line: "<fp-hex> <payload>[ k <checksum>]".
 * A present checksum suffix must verify; its absence means a legacy
 * v1/v2 line, accepted unchecked. nullopt = torn/corrupt/foreign.
 */
std::optional<std::pair<std::uint64_t, MannaResult>>
parseJournalLine(std::string_view line)
{
    std::string_view body = line;
    const auto kpos = line.rfind(" k ");
    if (kpos != std::string_view::npos &&
        isHex16(line.substr(kpos + 3))) {
        const std::string ck(line.substr(kpos + 3));
        if (std::strtoull(ck.c_str(), nullptr, 16) !=
            lineChecksum(line.substr(0, kpos)))
            return std::nullopt; // bit rot: never trust the record
        body = line.substr(0, kpos);
    }

    const auto space = body.find(' ');
    if (space == std::string_view::npos)
        return std::nullopt;
    const std::string fpText(body.substr(0, space));
    errno = 0;
    char *end = nullptr;
    const std::uint64_t fp = std::strtoull(fpText.c_str(), &end, 16);
    if (errno != 0 || end == fpText.c_str() || *end != '\0')
        return std::nullopt;
    auto result = decodeResult(body.substr(space + 1));
    if (!result)
        return std::nullopt;
    return std::make_pair(fp, std::move(*result));
}

} // namespace

std::string
encodeResult(const MannaResult &result)
{
    const sim::RunReport &rep = result.report;
    std::string out = strformat(
        "v2 s %llu c %llu t %s e %s %s %s d %s %s",
        static_cast<unsigned long long>(rep.steps),
        static_cast<unsigned long long>(rep.totalCycles),
        hexDouble(rep.totalSeconds).c_str(),
        hexDouble(rep.dynamicEnergyPj).c_str(),
        hexDouble(rep.leakageEnergyPj).c_str(),
        hexDouble(rep.infrastructureEnergyPj).c_str(),
        hexDouble(result.secondsPerStep).c_str(),
        hexDouble(result.joulesPerStep).c_str());

    out += strformat(" g %zu", rep.groups.size());
    for (const auto &[group, gs] : rep.groups)
        out += strformat(" %d %llu %s", static_cast<int>(group),
                         static_cast<unsigned long long>(gs.cycles),
                         hexDouble(gs.energyPj).c_str());

    out += strformat(" u %zu", rep.resourceUtilization.size());
    for (const auto &[name, util] : rep.resourceUtilization)
        out += strformat(" %s %s", name.c_str(),
                         hexDouble(util).c_str());

    out += strformat(" x %zu", result.groupSeconds.size());
    for (const auto &[group, sec] : result.groupSeconds)
        out += strformat(" %d %s", static_cast<int>(group),
                         hexDouble(sec).c_str());

    // v2 addition: the component stat registry. Keys are dotted
    // identifiers (never contain whitespace), so they tokenize.
    out += strformat(" r %zu", rep.stats.size());
    for (const auto &[key, value] : rep.stats.entries())
        out += strformat(" %s %s", key.c_str(),
                         hexDouble(value).c_str());
    return out;
}

std::optional<MannaResult>
decodeResult(std::string_view line)
{
    TokenReader r(line);
    const std::string version = r.token();
    // v1 records (from journals written before the stat registry
    // existed) decode with an empty registry; v2 requires it.
    if (version != "v1" && version != "v2")
        return std::nullopt;

    MannaResult result;
    sim::RunReport &rep = result.report;
    r.literal("s");
    rep.steps = static_cast<std::size_t>(r.u64());
    r.literal("c");
    rep.totalCycles = r.u64();
    r.literal("t");
    rep.totalSeconds = r.f64();
    r.literal("e");
    rep.dynamicEnergyPj = r.f64();
    rep.leakageEnergyPj = r.f64();
    rep.infrastructureEnergyPj = r.f64();
    r.literal("d");
    result.secondsPerStep = r.f64();
    result.joulesPerStep = r.f64();

    r.literal("g");
    const std::uint64_t nGroups = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < nGroups; ++i) {
        const int group = static_cast<int>(r.u64());
        sim::GroupStats gs;
        gs.cycles = r.u64();
        gs.energyPj = r.f64();
        if (group < 0 ||
            group >= static_cast<int>(mann::kNumKernelGroups))
            return std::nullopt;
        rep.groups[static_cast<mann::KernelGroup>(group)] = gs;
    }

    r.literal("u");
    const std::uint64_t nUtil = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < nUtil; ++i) {
        const std::string name = r.token();
        rep.resourceUtilization[name] = r.f64();
    }

    r.literal("x");
    const std::uint64_t nGroupSec = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < nGroupSec; ++i) {
        const int group = static_cast<int>(r.u64());
        const double sec = r.f64();
        if (group < 0 ||
            group >= static_cast<int>(mann::kNumKernelGroups))
            return std::nullopt;
        result.groupSeconds[static_cast<mann::KernelGroup>(group)] =
            sec;
    }

    if (version == "v2") {
        r.literal("r");
        const std::uint64_t nStats = r.u64();
        for (std::uint64_t i = 0; r.ok() && i < nStats; ++i) {
            const std::string key = r.token();
            rep.stats.set(key, r.f64());
        }
    }

    if (!r.ok() || !r.done())
        return std::nullopt;
    return result;
}

std::string
encodeJournalLine(std::uint64_t fingerprint,
                  const MannaResult &result)
{
    std::string line =
        strformat("%016llx ",
                  static_cast<unsigned long long>(fingerprint)) +
        encodeResult(result);
    line += strformat(" k %016llx",
                      static_cast<unsigned long long>(
                          lineChecksum(line)));
    return line;
}

SweepJournal::SweepJournal(const std::string &path,
                           std::size_t fsyncBatch)
    : path_(path), fsyncBatch_(fsyncBatch == 0 ? 1 : fsyncBatch)
{
    file_ = std::fopen(path.c_str(), "a");
    if (!file_)
        warn("cannot open sweep journal '%s' (%s); continuing "
             "without checkpointing",
             path.c_str(), std::strerror(errno));
}

SweepJournal::~SweepJournal()
{
    if (!file_)
        return;
    // Destructors must not throw; a failed final flush degrades to a
    // warning (the resume path tolerates the missing tail records).
    try {
        sync();
    } catch (const Error &e) {
        warn("sweep journal close: %s", e.what());
    }
    if (!file_)
        return; // sync() already closed it on failure
    if (fault::anyArmed() &&
        fault::shouldFire(fault::Site::JournalClose)) {
        warn("sweep journal close failed on '%s' (injected %s)",
             path_.c_str(),
             fault::siteName(fault::Site::JournalClose));
    }
    std::fclose(file_);
    file_ = nullptr;
}

void
SweepJournal::failLocked(const char *op, int err)
{
    // One failure permanently disables the journal: the sweep keeps
    // running un-checkpointed (callers warn once) instead of
    // re-raising on every record of a full or broken disk.
    std::fclose(file_);
    file_ = nullptr;
    throw IoError(strformat(
        "sweep journal %s failed on '%s': %s; checkpointing disabled "
        "for the rest of this run",
        op, path_.c_str(), std::strerror(err)));
}

void
SweepJournal::flushLocked()
{
    errno = 0;
    if (std::fflush(file_) != 0)
        failLocked("flush", errno != 0 ? errno : EIO);
    if (fault::anyArmed() &&
        fault::shouldFire(fault::Site::JournalFsync))
        failLocked("fsync (injected)", EIO);
    errno = 0;
    if (::fsync(::fileno(file_)) != 0)
        failLocked("fsync", errno != 0 ? errno : EIO);
    pending_ = 0;
}

void
SweepJournal::append(std::uint64_t fingerprint,
                     const MannaResult &result)
{
    const std::string line =
        encodeJournalLine(fingerprint, result) + "\n";
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    if (fault::anyArmed()) {
        if (fault::shouldFire(fault::Site::JournalAppendTorn)) {
            // Silent torn write: half the record, newline-terminated
            // so the journal stays line-parseable. The loader counts
            // it corrupt and the job re-runs — exactly the artifact
            // a kill -9 between fwrite and fsync leaves behind.
            const std::string torn =
                line.substr(0, line.size() / 2) + "\n";
            std::fwrite(torn.data(), 1, torn.size(), file_);
            bytesWritten_ += torn.size();
            if (++pending_ >= fsyncBatch_)
                flushLocked();
            return;
        }
        if (fault::shouldFire(fault::Site::JournalAppendShort)) {
            std::fwrite(line.data(), 1, line.size() / 2, file_);
            std::fflush(file_);
            failLocked("append (injected short write)", EIO);
        }
        if (fault::shouldFire(fault::Site::JournalAppendEio))
            failLocked("append (injected)", EIO);
        if (fault::shouldFire(fault::Site::JournalAppendEnospc))
            failLocked("append (injected)", ENOSPC);
    }
    errno = 0;
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
        line.size())
        failLocked("append", errno != 0 ? errno : EIO);
    bytesWritten_ += line.size();
    if (++pending_ >= fsyncBatch_)
        flushLocked();
}

std::uint64_t
SweepJournal::bytesWritten() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytesWritten_;
}

void
SweepJournal::sync()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    flushLocked();
}

std::map<std::uint64_t, MannaResult>
loadJournal(const std::string &path, JournalLoadStats *stats)
{
    std::map<std::uint64_t, MannaResult> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    while (std::getline(in, line)) {
        std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        if (fault::anyArmed() &&
            fault::shouldFire(fault::Site::JournalReadCorrupt) &&
            !trimmed.empty()) {
            // Deterministic bit rot: flip the low bit of the middle
            // byte of the record, as a bad disk/network would.
            trimmed[trimmed.size() / 2] ^= 0x1;
        }
        auto parsed = parseJournalLine(trimmed);
        if (!parsed) {
            // Skip-and-rescan: count it, re-sync at the next line,
            // never trust or propagate the bytes. The job re-runs.
            if (stats)
                ++stats->corruptRecords;
            continue;
        }
        if (stats)
            ++stats->records;
        out.insert_or_assign(parsed->first,
                             std::move(parsed->second));
    }
    return out;
}

std::map<std::uint64_t, MannaResult>
loadJournals(const std::vector<std::string> &paths,
             JournalLoadStats *stats)
{
    std::map<std::uint64_t, MannaResult> out;
    for (const std::string &path : paths)
        for (auto &[fp, result] : loadJournal(path, stats))
            out.insert_or_assign(fp, std::move(result));
    return out;
}

std::vector<std::string>
splitJournalList(const std::string &list)
{
    std::vector<std::string> out;
    for (const std::string &part : split(list, ',')) {
        const std::string p = trim(part);
        if (!p.empty())
            out.push_back(p);
    }
    return out;
}

} // namespace manna::harness
