#include "sweep.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "compiler/compile_cache.hh"

namespace manna::harness
{

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("MANNA_JOBS")) {
        const auto v = parseInt(env);
        if (v && *v > 0)
            return static_cast<std::size_t>(*v);
        warn("ignoring invalid MANNA_JOBS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

ThreadPool::ThreadPool(std::size_t threads)
{
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    hasWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // Degenerate pool: run inline so submit()/wait() still work.
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    hasWork_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            hasWork_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

SweepRunner::SweepRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
    if (jobs_ > 1)
        pool_ = std::make_unique<ThreadPool>(jobs_);
}

std::vector<MannaResult>
SweepRunner::runAll(const std::vector<SweepJob> &jobs)
{
    struct Outcome
    {
        std::shared_ptr<const compiler::CompiledModel> model;
        MannaResult result;
    };

    auto outcomes = map(jobs.size(), [&jobs](std::size_t i) {
        const SweepJob &job = jobs[i];
        Outcome o;
        o.model =
            compiler::compileCached(job.benchmark.config, job.config);
        o.result = runCompiled(job.benchmark, *o.model, job.steps,
                               job.seed);
        return o;
    });

    // Replay deferred diagnostics in submission order: worker threads
    // never write to the log streams themselves.
    std::vector<MannaResult> results;
    results.reserve(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        for (const auto &w : outcomes[i].model->warnings)
            debugLog("%s: %s", jobs[i].benchmark.name.c_str(),
                     w.c_str());
        results.push_back(std::move(outcomes[i].result));
    }
    return results;
}

} // namespace manna::harness
