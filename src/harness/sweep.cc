#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <unistd.h>

#include "common/config.hh"
#include "common/event_log.hh"
#include "common/fault.hh"
#include "common/fileio.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/shutdown.hh"
#include "common/strutil.hh"
#include "compiler/artifact.hh"
#include "compiler/compile_cache.hh"
#include "harness/client.hh"
#include "harness/journal.hh"

namespace manna::harness
{

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("MANNA_JOBS")) {
        const auto v = parseInt(env);
        if (v && *v > 0)
            return static_cast<std::size_t>(*v);
        warn("ignoring invalid MANNA_JOBS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::size_t
defaultRetries()
{
    if (const char *env = std::getenv("MANNA_RETRIES")) {
        const auto v = parseInt(env);
        if (v && *v >= 0)
            return static_cast<std::size_t>(*v);
        warn("ignoring invalid MANNA_RETRIES='%s'", env);
    }
    return 0;
}

double
defaultTimeoutSeconds()
{
    if (const char *env = std::getenv("MANNA_TIMEOUT")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && *end == '\0' && v >= 0.0)
            return v;
        warn("ignoring invalid MANNA_TIMEOUT='%s'", env);
    }
    return 0.0;
}

double
defaultProgressSeconds()
{
    if (const char *env = std::getenv("MANNA_PROGRESS")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && *end == '\0' && v >= 0.0)
            return v;
        warn("ignoring invalid MANNA_PROGRESS='%s'", env);
    }
    return 0.0;
}

std::string
defaultStatsPath()
{
    if (const char *env = std::getenv("MANNA_STATS"))
        return env;
    return "";
}

std::size_t
defaultCacheEntries()
{
    if (const char *env = std::getenv("MANNA_CACHE_ENTRIES")) {
        const auto v = parseInt(env);
        if (v && *v >= 0)
            return static_cast<std::size_t>(*v);
        warn("ignoring invalid MANNA_CACHE_ENTRIES='%s'", env);
    }
    return 0;
}

std::string
defaultMetricsPath()
{
    if (const char *env = std::getenv("MANNA_METRICS"))
        return env;
    return "";
}

double
defaultMetricsIntervalSeconds()
{
    if (const char *env = std::getenv("MANNA_METRICS_INTERVAL")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && *end == '\0' && v > 0.0)
            return v;
        warn("ignoring invalid MANNA_METRICS_INTERVAL='%s'", env);
    }
    return 1.0;
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

ThreadPool::ThreadPool(std::size_t threads)
{
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    hasWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // Degenerate pool: run inline so submit()/wait() still work.
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    hasWork_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            hasWork_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Pool tasks are fault-isolated wrappers that catch their own
        // exceptions; a throw reaching here would leave inFlight_
        // stuck and deadlock wait(), so fail loudly instead.
        try {
            task();
        } catch (const std::exception &e) {
            panic("sweep pool task threw (harness bug): %s", e.what());
        } catch (...) {
            panic("sweep pool task threw (harness bug)");
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// SweepJob
// ---------------------------------------------------------------------

std::uint64_t
SweepJob::fingerprint() const
{
    // The episode generator depends on the task kind and (via the RNG
    // stream) the step count and seed; the simulator on the compiled
    // model, i.e. the MANN + arch fingerprints.
    Fnv1a h;
    h.u64(benchmark.config.fingerprint());
    h.u64(config.fingerprint());
    h.u64(static_cast<std::uint64_t>(steps));
    h.u64(seed);
    h.u64(static_cast<std::uint64_t>(benchmark.task));
    h.bytes(benchmark.name.data(), benchmark.name.size());
    // Mixed in only for fast jobs so every pre-existing cycle journal
    // keeps its fingerprints.
    if (fidelity == sim::Fidelity::Fast) {
        static constexpr const char kTag[] = "fidelity=fast";
        h.bytes(kTag, sizeof(kTag) - 1);
    }
    return h.value();
}

std::string
SweepJob::label() const
{
    std::string out =
        strformat("%s tiles=%zu steps=%zu seed=%llu",
                  benchmark.name.c_str(), config.numTiles, steps,
                  static_cast<unsigned long long>(seed));
    if (fidelity == sim::Fidelity::Fast)
        out += " fidelity=fast";
    return out;
}

// ---------------------------------------------------------------------
// JobError / SweepReport
// ---------------------------------------------------------------------

std::string
JobError::describe() const
{
    std::string out =
        strformat("%s: %s", toString(kind), message.c_str());
    if (!job.empty() || fingerprint != 0) {
        out += " [";
        if (!job.empty()) {
            out += "job=";
            out += job;
            if (fingerprint != 0)
                out += " ";
        }
        if (fingerprint != 0)
            out += strformat("fp=0x%016llx",
                             static_cast<unsigned long long>(
                                 fingerprint));
        out += "]";
    }
    return out;
}

std::size_t
SweepReport::failures() const
{
    return static_cast<std::size_t>(std::count_if(
        outcomes.begin(), outcomes.end(), [](const JobOutcome &o) {
            return !o.ok && !o.skipped;
        }));
}

StatRegistry
SweepReport::aggregateStats() const
{
    StatRegistry agg;
    for (const JobOutcome &o : outcomes)
        if (o.ok)
            agg.merge(o.value.report.stats);
    return agg;
}

std::string
renderSweepStats(const SweepReport &report)
{
    std::size_t ok = 0, failed = 0, restored = 0, attempts = 0;
    std::size_t executed = 0;
    double wallSum = 0.0, wallMin = 0.0, wallMax = 0.0;
    for (const JobOutcome &o : report.outcomes) {
        if (o.skipped)
            continue; // another shard's job (docs/DISTRIBUTED.md)
        (o.ok ? ok : failed) += 1;
        if (o.fromJournal)
            ++restored;
        attempts += o.attempts;
        if (o.attempts > 0) {
            wallSum += o.wallMs;
            wallMin = executed == 0 ? o.wallMs
                                    : std::min(wallMin, o.wallMs);
            wallMax = std::max(wallMax, o.wallMs);
            ++executed;
        }
    }
    const double jobsPerSecond =
        report.wallSeconds > 0.0
            ? static_cast<double>(ok + failed) / report.wallSeconds
            : 0.0;

    std::string out = "{\n";
    out += "  \"schema\": \"manna-sweep-stats-v1\",\n";
    out += strformat("  \"jobs\": {\"total\": %zu, \"ok\": %zu, "
                     "\"failed\": %zu, \"from_journal\": %zu, "
                     "\"attempts\": %zu, \"watchdog_cancelled\": %zu, "
                     "\"journal.corrupt_records\": %zu},\n",
                     ok + failed, ok, failed, restored, attempts,
                     report.watchdogCancellations,
                     report.journalCorruptRecords);
    out += "  \"counters\": " + report.aggregateStats().toJson(4) +
           ",\n";
    out += strformat(
        "  \"throughput\": {\"wall_seconds\": %s, "
        "\"jobs_per_second\": %s, \"workers\": %zu, "
        "\"job_wall_ms\": {\"mean\": %s, \"min\": %s, \"max\": %s}},\n",
        jsonNumber(report.wallSeconds).c_str(),
        jsonNumber(jobsPerSecond).c_str(), report.workers,
        jsonNumber(executed > 0 ? wallSum /
                                      static_cast<double>(executed)
                                : 0.0)
            .c_str(),
        jsonNumber(wallMin).c_str(), jsonNumber(wallMax).c_str());
    out += strformat("  \"process\": {\"compile_cache_hits\": %zu, "
                     "\"compile_cache_misses\": %zu, "
                     "\"compile_cache_evictions\": %zu, "
                     "\"artifact_cache.hits\": %zu, "
                     "\"artifact_cache.misses\": %zu, "
                     "\"artifact_cache.evictions\": %zu, "
                     "\"artifact_cache.corrupt\": %zu}\n",
                     compiler::compileCacheHits(),
                     compiler::compileCacheMisses(),
                     compiler::compileCacheEvictions(),
                     compiler::artifactCacheHits(),
                     compiler::artifactCacheMisses(),
                     compiler::artifactCacheEvictions(),
                     compiler::artifactCacheCorrupt());
    out += "}\n";
    return out;
}

std::string
SweepReport::failureSummary() const
{
    const std::size_t failed = failures();
    if (failed == 0)
        return "";
    std::string out =
        strformat("%zu of %zu sweep job%s failed:", failed,
                  outcomes.size(), failed == 1 ? "" : "s");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const JobOutcome &o = outcomes[i];
        if (o.ok || o.skipped)
            continue;
        out += strformat("\n  #%zu %s (attempts=%zu)", i,
                         o.error.describe().c_str(), o.attempts);
    }
    return out;
}

// ---------------------------------------------------------------------
// Options / reporting helpers
// ---------------------------------------------------------------------

SweepOptions
sweepOptionsFromConfig(const Config &cfg)
{
    SweepOptions opts;
    opts.retries = static_cast<std::size_t>(std::max<std::int64_t>(
        0, cfg.getInt("retries",
                      static_cast<std::int64_t>(opts.retries))));
    opts.timeoutSeconds =
        std::max(0.0, cfg.getDouble("timeout", opts.timeoutSeconds));
    opts.journalPath = cfg.getString("journal", "");
    opts.resumeFrom = cfg.getString("resume", "");
    // resume= alone implies continuing to checkpoint into the same
    // journal, so a twice-interrupted sweep still resumes correctly.
    // A comma-separated resume list is read-only: there is no single
    // "same file" to keep appending to.
    if (opts.journalPath.empty() && !opts.resumeFrom.empty() &&
        opts.resumeFrom.find(',') == std::string::npos)
        opts.journalPath = opts.resumeFrom;
    opts.progressSeconds = std::max(
        0.0, cfg.getDouble("progress", opts.progressSeconds));
    opts.statsPath = cfg.getString("stats", opts.statsPath);
    opts.server =
        cfg.getString("server", client::defaultServerAddress());
    opts.cacheEntries = static_cast<std::size_t>(
        std::max<std::int64_t>(
            0, cfg.getInt("cache_entries",
                          static_cast<std::int64_t>(
                              opts.cacheEntries))));
    opts.shard = shardOptionsFromConfig(cfg);
    // Arm the fault-injection sites (faults= / MANNA_FAULTS) here so
    // every sweep bench gets the knobs for free. Process-wide state,
    // like the compile cache.
    fault::configureFromConfig(cfg);
    // The on-disk program-artifact cache (compiler/artifact.hh) is
    // process-wide state too: artifact_cache=DIR selects the
    // directory (MANNA_ARTIFACT_CACHE fallback, "" = off) and
    // artifact_cache_entries= bounds it.
    compiler::setArtifactCacheDir(cfg.getString(
        "artifact_cache", compiler::defaultArtifactCacheDir()));
    compiler::setArtifactCacheCapacity(static_cast<std::size_t>(
        std::max<std::int64_t>(
            0, cfg.getInt("artifact_cache_entries",
                          static_cast<std::int64_t>(
                              compiler::artifactCacheCapacity())))));
    opts.metrics.path = cfg.getString("metrics", opts.metrics.path);
    opts.metrics.intervalSeconds =
        cfg.getDouble("metrics_interval",
                      opts.metrics.intervalSeconds);
    if (opts.metrics.intervalSeconds <= 0.0) {
        warn("metrics_interval= must be positive; using 1s");
        opts.metrics.intervalSeconds = 1.0;
    }
    // Harness tracing (docs/OBSERVABILITY.md): derive this process's
    // role from the shard knobs, tag multi-process stderr with it,
    // and arm the event log when events= asks for one. Process-wide
    // side effects, like fault injection above.
    std::string role = "main";
    if (opts.shard.isWorker())
        role = strformat("shard %zu", opts.shard.workerIndex);
    else if (opts.shard.isCoordinator())
        role = "coord";
    if (role != "main")
        setLogRole(role);
    events::configureFromConfig(cfg, role);
    return opts;
}

sim::Fidelity
fidelityFromConfig(const Config &cfg)
{
    const std::string text = cfg.getString("fidelity", "");
    if (text.empty())
        return sim::defaultFidelity(); // MANNA_FIDELITY, else cycle
    const auto parsed = sim::parseFidelity(text);
    if (!parsed) {
        warn("fidelity=%s not recognized (want cycle|fast); "
             "using cycle",
             text.c_str());
        return sim::Fidelity::Cycle;
    }
    return *parsed;
}

int
finishSweep(const SweepReport &report)
{
    if (report.allOk())
        return 0;
    std::printf("%s\n", report.failureSummary().c_str());
    return 1;
}

// ---------------------------------------------------------------------
// Metrics time series (metrics= / metrics_interval=)
// ---------------------------------------------------------------------

std::size_t
processRssKb()
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    std::size_t rss = 0;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        unsigned long long kb = 0;
        if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
            rss = static_cast<std::size_t>(kb);
            break;
        }
    }
    std::fclose(f);
    return rss;
}

std::string
renderMetricsHeader(const std::string &role, double intervalSeconds)
{
    return strformat("{\"schema\": \"manna-metrics-v1\", "
                     "\"role\": \"%s\", \"pid\": %ld, "
                     "\"interval_seconds\": %s}",
                     jsonEscape(role).c_str(),
                     static_cast<long>(::getpid()),
                     jsonNumber(intervalSeconds).c_str());
}

std::string
renderMetricsSample(const MetricsSample &s)
{
    return strformat(
        "{\"elapsed_seconds\": %s, \"jobs_total\": %zu, "
        "\"done\": %zu, \"failed\": %zu, \"restored\": %zu, "
        "\"queue_depth\": %zu, \"jobs_per_second\": %s, "
        "\"compile_cache_hits\": %zu, \"compile_cache_misses\": %zu, "
        "\"artifact_cache_hits\": %zu, "
        "\"artifact_cache_misses\": %zu, \"journal_bytes\": %llu, "
        "\"rss_kb\": %zu}",
        jsonNumber(s.elapsedSeconds).c_str(), s.jobsTotal, s.done,
        s.failed, s.restored, s.queueDepth,
        jsonNumber(s.jobsPerSecond).c_str(), s.compileCacheHits,
        s.compileCacheMisses, s.artifactCacheHits,
        s.artifactCacheMisses,
        static_cast<unsigned long long>(s.journalBytes), s.rssKb);
}

MetricsSampler::MetricsSampler(const MetricsOptions &opts,
                               const std::string &role,
                               Provider provider)
    : provider_(std::move(provider))
{
    if (!opts.enabled() || !provider_)
        return;
    file_ = std::fopen(opts.path.c_str(), "w");
    if (!file_) {
        warn("cannot create metrics file '%s' (%s); sampling "
             "disabled",
             opts.path.c_str(), std::strerror(errno));
        return;
    }
    interval_ = std::max(0.05, opts.intervalSeconds);
    std::fprintf(file_, "%s\n",
                 renderMetricsHeader(role, interval_).c_str());
    std::fflush(file_);
    thread_ = std::thread([this] { loop(); });
}

MetricsSampler::~MetricsSampler()
{
    if (thread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        wake_.notify_all();
        thread_.join();
        sampleOnce(); // final sample: short sweeps still record one
    }
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
MetricsSampler::loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        wake_.wait_for(lock,
                       std::chrono::duration<double>(interval_));
        if (stop_)
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

void
MetricsSampler::sampleOnce()
{
    if (!file_)
        return;
    const MetricsSample s = provider_();
    std::fprintf(file_, "%s\n", renderMetricsSample(s).c_str());
    // Per-line flush: a killed process keeps every complete sample.
    std::fflush(file_);
}

// ---------------------------------------------------------------------
// Watchdog: cancels jobs that exceed their wall-clock budget.
// ---------------------------------------------------------------------

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * One scanner thread over the registered {token, deadline} slots.
 * Doubles as the graceful-shutdown cancel fan-out: when
 * @p watchShutdown is set and SIGTERM/SIGINT arrives, every
 * registered token is fired so running simulations unwind through
 * the normal cancellation path. Only instantiated when a timeout or
 * signal handling is configured, so bare sweeps spawn no extra
 * thread.
 */
class Watchdog
{
  public:
    Watchdog(double timeoutSeconds, bool watchShutdown)
        : timeout_(timeoutSeconds), watchShutdown_(watchShutdown)
    {
        if (tracking())
            scanner_ = std::thread([this] { loop(); });
    }

    ~Watchdog()
    {
        if (!scanner_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        wake_.notify_all();
        scanner_.join();
    }

    bool enabled() const { return timeout_ > 0.0; }
    bool tracking() const { return enabled() || watchShutdown_; }

    /** Attempts cancelled for exceeding the budget so far (shutdown
     * cancellations are not counted here). */
    std::size_t
    cancellations()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return cancellations_;
    }

    void
    add(CancelToken *token)
    {
        if (!tracking())
            return;
        const auto deadline =
            enabled()
                ? Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(timeout_))
                : Clock::time_point::max();
        {
            std::lock_guard<std::mutex> lock(mu_);
            slots_.push_back({token, deadline});
        }
        wake_.notify_all();
    }

    void
    remove(CancelToken *token)
    {
        if (!tracking())
            return;
        std::lock_guard<std::mutex> lock(mu_);
        slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                    [token](const Slot &s) {
                                        return s.token == token;
                                    }),
                     slots_.end());
    }

  private:
    struct Slot
    {
        CancelToken *token;
        Clock::time_point deadline;
    };

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
            wake_.wait_for(lock, std::chrono::milliseconds(5));
            const bool drain =
                watchShutdown_ && shutdownRequested();
            if (drain && !drainReported_) {
                drainReported_ = true;
                events::instant("sweep.interrupted",
                                strformat("signal=%d",
                                          shutdownSignal()));
            }
            const auto now = Clock::now();
            for (const Slot &s : slots_) {
                if ((drain || now >= s.deadline) &&
                    !s.token->cancelled()) {
                    s.token->cancel();
                    if (!drain || now >= s.deadline) {
                        ++cancellations_;
                        events::instant("job.cancelled",
                                        "cause=timeout");
                    }
                }
            }
        }
    }

    const double timeout_;
    const bool watchShutdown_;
    std::thread scanner_;
    std::mutex mu_;
    std::condition_variable wake_;
    std::vector<Slot> slots_;
    std::size_t cancellations_ = 0;
    bool stop_ = false;
    bool drainReported_ = false;
};

/** RAII registration of a job attempt's token with the watchdog. */
class WatchdogGuard
{
  public:
    WatchdogGuard(Watchdog &dog, CancelToken &token)
        : dog_(dog), token_(token)
    {
        dog_.add(&token_);
    }

    ~WatchdogGuard() { dog_.remove(&token_); }

    WatchdogGuard(const WatchdogGuard &) = delete;
    WatchdogGuard &operator=(const WatchdogGuard &) = delete;

  private:
    Watchdog &dog_;
    CancelToken &token_;
};

/** Shared counters the progress reporter samples. Workers only ever
 * increment; relaxed ordering is enough for a throughput display. */
struct ProgressCounters
{
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> failed{0};
    std::atomic<std::size_t> restored{0};
    std::atomic<std::size_t> attempts{0};
};

/**
 * Periodic throughput dashboard: one line to stderr every interval
 * while the sweep runs, plus a final line at completion. A dedicated
 * thread keeps worker threads free of any I/O (the stdout
 * byte-identity contract; stderr is opt-in via progress=/
 * MANNA_PROGRESS).
 */
class ProgressReporter
{
  public:
    ProgressReporter(double intervalSeconds, std::size_t total,
                     const ProgressCounters &counters)
        : interval_(intervalSeconds), total_(total),
          counters_(counters), start_(Clock::now())
    {
        if (interval_ > 0.0 && total_ > 0)
            thread_ = std::thread([this] { loop(); });
    }

    ~ProgressReporter()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        wake_.notify_all();
        thread_.join();
        emit(); // final line so short sweeps still report once
    }

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
            wake_.wait_for(lock,
                           std::chrono::duration<double>(interval_));
            if (stop_)
                break;
            emit();
        }
    }

    void
    emit() const
    {
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start_)
                .count();
        const std::size_t done = counters_.done.load();
        const std::size_t failed = counters_.failed.load();
        const std::size_t restored = counters_.restored.load();
        const std::size_t attempts = counters_.attempts.load();
        const std::size_t retries = attempts > (done - restored)
                                        ? attempts - (done - restored)
                                        : 0;
        const double rate =
            elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
        const double eta =
            rate > 0.0
                ? static_cast<double>(total_ - done) / rate
                : 0.0;
        std::fprintf(stderr,
                     "sweep: %zu/%zu jobs  %.1f jobs/s  ETA %.0fs  "
                     "(restored %zu, retries %zu, failures %zu)\n",
                     done, total_, rate, eta, restored, retries,
                     failed);
        std::fflush(stderr);
    }

    const double interval_;
    const std::size_t total_;
    const ProgressCounters &counters_;
    const Clock::time_point start_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable wake_;
    bool stop_ = false;
};

std::uint64_t
backoffMs(const SweepOptions &opts, std::size_t failedAttempts)
{
    const std::size_t shift = std::min<std::size_t>(
        failedAttempts > 0 ? failedAttempts - 1 : 0, 16);
    return std::min<std::uint64_t>(opts.backoffCapMs,
                                   opts.backoffBaseMs << shift);
}

} // namespace

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

SweepRunner::SweepRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
    if (jobs_ > 1)
        pool_ = std::make_unique<ThreadPool>(jobs_);
}

SweepReport
SweepRunner::runIsolated(std::size_t count, const IsolatedFn &fn,
                         const std::vector<std::string> &labels,
                         const std::vector<std::uint64_t> &fingerprints,
                         const SweepOptions &opts)
{
    MANNA_ASSERT(labels.empty() || labels.size() == count,
                 "labels must be empty or one per job");
    MANNA_ASSERT(fingerprints.empty() ||
                     fingerprints.size() == count,
                 "fingerprints must be empty or one per job");

    const bool journaling =
        !fingerprints.empty() &&
        (!opts.journalPath.empty() || !opts.resumeFrom.empty());
    if (fingerprints.empty() &&
        (!opts.journalPath.empty() || !opts.resumeFrom.empty()))
        warn("sweep journal requested but jobs carry no fingerprints; "
             "running without checkpointing");

    compiler::setCompileCacheCapacity(opts.cacheEntries);
    if (opts.handleSignals)
        installShutdownHandlers();

    JournalLoadStats journalStats;
    std::map<std::uint64_t, MannaResult> restored;
    if (journaling && !opts.resumeFrom.empty()) {
        events::Span span("journal.load", "src=" + opts.resumeFrom);
        restored = loadJournals(splitJournalList(opts.resumeFrom),
                                &journalStats);
        span.end(strformat("records=%zu corrupt=%zu",
                           restored.size(),
                           journalStats.corruptRecords));
    }
    if (journalStats.corruptRecords > 0)
        warn("resume journals contained %zu corrupt record(s); "
             "the affected jobs will re-run",
             journalStats.corruptRecords);

    std::unique_ptr<SweepJournal> journal;
    if (journaling && !opts.journalPath.empty())
        journal = std::make_unique<SweepJournal>(
            opts.journalPath, opts.journalFsyncBatch);
    // One warning for the whole sweep when journaling degrades
    // mid-run (full disk, I/O error): results stay correct, only
    // checkpointing stops.
    std::atomic<bool> journalBroken{false};

    Watchdog watchdog(opts.timeoutSeconds, opts.handleSignals);
    ProgressCounters progress;
    const auto sweepStart = Clock::now();
    events::Span sweepSpan(
        "sweep.run",
        strformat("jobs=%zu workers=%zu", count, jobs_));

    auto runOne = [&](std::size_t i) -> JobOutcome {
        JobOutcome out;
        const std::uint64_t fp =
            fingerprints.empty() ? 0 : fingerprints[i];
        if (!labels.empty())
            out.error.job = labels[i];
        out.error.fingerprint = fp;

        if (journaling) {
            const auto it = restored.find(fp);
            if (it != restored.end()) {
                out.ok = true;
                out.value = it->second;
                out.fromJournal = true;
                out.attempts = 0;
                progress.restored.fetch_add(1);
                progress.done.fetch_add(1);
                events::instant(
                    "job.restored",
                    strformat("index=%zu fp=0x%016llx", i,
                              static_cast<unsigned long long>(fp)));
                return out;
            }
        }

        // Jobs not yet started when the shutdown signal arrives are
        // abandoned (they resume from the journal); jobs already
        // running are cancelled by the watchdog's shutdown drain.
        if (opts.handleSignals && shutdownRequested()) {
            out.ok = false;
            out.attempts = 0;
            out.error.kind = ErrorKind::Sim;
            out.error.message = strformat(
                "sweep interrupted by signal %d before this job "
                "started",
                shutdownSignal());
            progress.failed.fetch_add(1);
            progress.done.fetch_add(1);
            return out;
        }

        const auto start = Clock::now();
        events::Span jobSpan(
            "job.run",
            labels.empty() ? strformat("index=%zu", i) : labels[i]);
        const std::size_t maxAttempts = 1 + opts.retries;
        for (std::size_t attempt = 1; attempt <= maxAttempts;
             ++attempt) {
            out.attempts = attempt;
            CancelToken token;
            WatchdogGuard guard(watchdog, token);
            events::Span attemptSpan(
                "job.attempt", strformat("attempt=%zu", attempt));
            try {
                out.value = fn(i, token);
                out.ok = true;
                attemptSpan.end("ok=1");
                break;
            } catch (const Error &e) {
                out.error.kind = e.kind();
                out.error.message = e.what();
                if (e.context().fingerprint != 0)
                    out.error.fingerprint = e.context().fingerprint;
            } catch (const std::exception &e) {
                out.error.kind = ErrorKind::Sim;
                out.error.message = e.what();
            } catch (...) {
                out.error.kind = ErrorKind::Sim;
                out.error.message = "unknown exception";
            }
            attemptSpan.end(strformat("ok=0 err=%s",
                                      toString(out.error.kind)));
            // Deterministic input errors re-fail identically: don't
            // burn the retry budget on them.
            if (out.error.kind == ErrorKind::Config ||
                out.error.kind == ErrorKind::Assembly)
                break;
            // A shutdown-cancelled attempt must not retry either.
            if (opts.handleSignals && shutdownRequested())
                break;
            if (attempt < maxAttempts) {
                const std::uint64_t delay = backoffMs(opts, attempt);
                events::instant(
                    "job.retry",
                    strformat("attempt=%zu backoff_ms=%llu", attempt,
                              static_cast<unsigned long long>(
                                  delay)));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            }
        }
        out.wallMs = std::chrono::duration<double, std::milli>(
                         Clock::now() - start)
                         .count();
        jobSpan.end(out.ok ? "ok=1" : "ok=0");

        if (out.ok) {
            out.error = JobError{};
            if (journal) {
                events::Span appendSpan("journal.append");
                try {
                    journal->append(fp, out.value);
                } catch (const Error &e) {
                    appendSpan.end("ok=0");
                    if (!journalBroken.exchange(true))
                        warn("%s", e.what());
                }
            }
        }
        progress.attempts.fetch_add(out.attempts);
        if (!out.ok)
            progress.failed.fetch_add(1);
        progress.done.fetch_add(1);
        return out;
    };

    SweepReport report;
    {
        MetricsSampler metrics(
            opts.metrics, logRole().empty() ? "main" : logRole(),
            [&progress, &journal, count, sweepStart] {
                MetricsSample s;
                s.elapsedSeconds =
                    std::chrono::duration<double>(Clock::now() -
                                                  sweepStart)
                        .count();
                s.jobsTotal = count;
                s.done = progress.done.load();
                s.failed = progress.failed.load();
                s.restored = progress.restored.load();
                s.queueDepth =
                    count > s.done ? count - s.done : 0;
                s.jobsPerSecond =
                    s.elapsedSeconds > 0.0
                        ? static_cast<double>(s.done) /
                              s.elapsedSeconds
                        : 0.0;
                s.compileCacheHits = compiler::compileCacheHits();
                s.compileCacheMisses =
                    compiler::compileCacheMisses();
                s.artifactCacheHits = compiler::artifactCacheHits();
                s.artifactCacheMisses =
                    compiler::artifactCacheMisses();
                s.journalBytes =
                    journal ? journal->bytesWritten() : 0;
                s.rssKb = processRssKb();
                return s;
            });
        ProgressReporter reporter(opts.progressSeconds, count,
                                  progress);
        report.outcomes = map(count, runOne);
    }
    if (journal) {
        try {
            journal->sync();
        } catch (const Error &e) {
            if (!journalBroken.exchange(true))
                warn("%s", e.what());
        }
    }
    report.watchdogCancellations = watchdog.cancellations();
    report.journalCorruptRecords = journalStats.corruptRecords;
    report.wallSeconds = std::chrono::duration<double>(Clock::now() -
                                                       sweepStart)
                             .count();
    report.workers = jobs_;
    sweepSpan.end(strformat("failed=%zu", report.failures()));

    if (opts.handleSignals && shutdownRequested()) {
        const std::size_t unfinished = report.failures();
        warn("sweep interrupted by signal %d: %zu of %zu job(s) "
             "unfinished%s",
             shutdownSignal(), unfinished, count,
             journal && journal->ok()
                 ? "; journal flushed, resume= continues the sweep"
                 : "");
    }

    if (!opts.statsPath.empty() &&
        !writeFileAtomic(opts.statsPath, renderSweepStats(report)))
        warn("cannot write sweep stats to '%s'",
             opts.statsPath.c_str());
    return report;
}

SweepReport
SweepRunner::runChecked(const std::vector<SweepJob> &jobs,
                        const SweepOptions &opts)
{
    // Distributed execution (docs/DISTRIBUTED.md): a worker runs its
    // shard of the jobs in-process; a coordinator never simulates,
    // it dispatches worker processes and merges their journals.
    if (opts.shard.isWorker())
        return runShardWorker(*this, jobs, opts);
    // Service execution (docs/SERVICE.md): route the whole sweep
    // through a running mannad. The daemon wins over shards= — it
    // already owns the process-level parallelism.
    if (!opts.server.empty()) {
        if (opts.shard.isCoordinator())
            warn("server= and shards= both set; using the daemon "
                 "at %s",
                 opts.server.c_str());
        return client::runServerSweep(*this, jobs, opts);
    }
    if (opts.shard.isCoordinator() && !jobs.empty()) {
        if (opts.shard.workerArgv.empty())
            warn("shards= requested but the worker command line is "
                 "unknown; running in-process instead");
        else
            return runShardCoordinator(jobs, opts);
    }

    std::vector<std::string> labels;
    std::vector<std::uint64_t> fingerprints;
    labels.reserve(jobs.size());
    fingerprints.reserve(jobs.size());
    for (const SweepJob &job : jobs) {
        labels.push_back(job.label());
        fingerprints.push_back(job.fingerprint());
    }

    // Distinct slots per job; written concurrently, read serially
    // afterwards for the submission-order warning replay.
    std::vector<std::shared_ptr<const compiler::CompiledModel>> models(
        jobs.size());

    SweepReport report = runIsolated(
        jobs.size(),
        [&jobs, &models](std::size_t i, const CancelToken &cancel) {
            const SweepJob &job = jobs[i];
            models[i] = compiler::compileCached(job.benchmark.config,
                                                job.config);
            return runCompiled(job.benchmark, *models[i], job.steps,
                               job.seed, &cancel, nullptr,
                               job.fidelity);
        },
        labels, fingerprints, opts);

    // Replay deferred diagnostics in submission order: worker threads
    // never write to the log streams themselves.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!models[i])
            continue; // failed before compile, or journal-restored
        for (const auto &w : models[i]->warnings)
            debugLog("%s: %s", jobs[i].benchmark.name.c_str(),
                     w.c_str());
    }
    return report;
}

std::vector<MannaResult>
SweepRunner::runAll(const std::vector<SweepJob> &jobs)
{
    SweepReport report = runChecked(jobs, SweepOptions{});
    if (!report.allOk())
        fatal("%s", report.failureSummary().c_str());

    std::vector<MannaResult> results;
    results.reserve(report.outcomes.size());
    for (JobOutcome &o : report.outcomes)
        results.push_back(std::move(o.value));
    return results;
}

} // namespace manna::harness
