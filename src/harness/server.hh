/**
 * @file
 * mannad — the simulation-as-a-service daemon (docs/SERVICE.md).
 *
 * A Server listens on a Unix or TCP socket (common/net.hh), speaks
 * the MNRQ/MNRS framing protocol (harness/proto.hh), and executes
 * submitted sweep jobs on a persistent work-stealing pool
 * (harness/worker_pool.hh). Scheduling is two-level:
 *
 *  - per client, a priority-ordered pending queue with admission
 *    control: once the total backlog reaches `queue_depth=`, new
 *    submissions get an explicit RetryAfter instead of silently
 *    queueing without bound;
 *  - across clients, deficit round-robin: each scheduling pass grants
 *    every backlogged client a quantum of cost units (job cost =
 *    max(1, steps)), so one client bulk-submitting a sweep cannot
 *    starve another's interactive run.
 *
 * The daemon executes exactly ONE attempt per submission and streams
 * the hexfloat-exact result (journal.hh encodeResult) back as soon as
 * it completes — retries, backoff, watchdog timeouts, and journaling
 * stay client-side in runIsolated(), which is what keeps a `server=`
 * run byte-identical to the same sweep in-process. A client that
 * disconnects (crash, SIGTERM) has its queued jobs dropped and its
 * running jobs cancelled through their CancelTokens.
 *
 * An optional daemon-side journal (journal=/resume=) short-circuits
 * resubmitted fingerprints across daemon restarts; metrics= appends a
 * manna-daemon-metrics-v1 JSONL series and stats= writes the final
 * manna-daemon-stats-v1 snapshot (both in docs/FORMATS.md).
 */

#ifndef MANNA_HARNESS_SERVER_HH
#define MANNA_HARNESS_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/net.hh"
#include "harness/worker_pool.hh"

namespace manna
{
class Config;
}

namespace manna::harness::server
{

/** Knob names the daemon accepts, linted two-way against the knob
 * table in docs/SERVICE.md by scripts/check_docs.sh. */
extern const char *const kServiceKnobs[];
extern const std::size_t kNumServiceKnobs;

struct ServerOptions
{
    /** Listen endpoint (net::parseAddress form). */
    std::string address;

    /** Pool workers; 0 selects defaultJobs(). */
    std::size_t pool = 0;

    /** Admission bound: total queued (not yet dispatched) jobs
     * across all clients before submissions get RetryAfter. */
    std::size_t queueDepth = 64;

    /** Work stealing between pool workers (steal=, default on). */
    bool steal = true;

    /** Max concurrently connected clients; further connections are
     * rejected at the protocol level. */
    std::size_t maxClients = 16;

    /** Daemon-side result journal ("" disables) and resume list —
     * same semantics as the sweep knobs, keyed by job fingerprint. */
    std::string journalPath;
    std::string resumeFrom;

    /** Final manna-daemon-stats-v1 snapshot path ("" disables). */
    std::string statsPath;

    /** manna-daemon-metrics-v1 JSONL path ("" disables) + interval. */
    std::string metricsPath;
    double metricsIntervalSeconds = 1.0;

    /** Event-log file this daemon writes (advertised to clients in
     * HelloOk so they can merge it into their harness trace). */
    std::string eventsPath;

    /** Compile-cache entry bound (0 = unbounded). */
    std::size_t cacheEntries = 0;
};

/** Parse the daemon knobs: server=, pool=, queue_depth=, steal=,
 * clients=, journal=, resume=, stats=, metrics=, metrics_interval=,
 * cache_entries= — with MANNA_* environment twins where the in-
 * process sweep has them — and arm the process-wide fault/event/
 * artifact-cache machinery exactly like sweepOptionsFromConfig. */
ServerOptions serverOptionsFromConfig(const Config &cfg);

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the accept/dispatch/metrics threads.
     * Throws IoError when the endpoint cannot be bound. */
    void start();

    /** Graceful stop: close the listener, cancel running jobs, drop
     * queued ones, join every thread, write stats=. Idempotent. */
    void stop();

    /** Block until a client asked for Shutdown (or stop() ran). */
    void wait();

    /** True once shutdown was requested or performed. */
    bool stopping() const;

    /** Canonical text form of the bound endpoint. */
    std::string boundAddress() const;

    /** The manna-daemon-stats-v1 snapshot (docs/FORMATS.md). */
    std::string statsJson() const;

    // Counter peeks for tests.
    std::uint64_t acceptedConnections() const;
    std::uint64_t completedJobs() const;
    std::uint64_t failedJobs() const;
    std::uint64_t cancelledJobs() const;
    std::uint64_t retryAfterCount() const;
    std::uint64_t journalHits() const;
    const WorkerPool &pool() const { return *pool_; }

  private:
    struct Conn;
    struct Pending;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void dispatchLoop();
    void metricsLoop();
    void executeJob(std::shared_ptr<Conn> conn, Pending pending,
                    std::shared_ptr<CancelToken> token);
    void handleSubmit(const std::shared_ptr<Conn> &conn,
                      const std::string &payload);
    void handleCancel(const std::shared_ptr<Conn> &conn,
                      const std::string &payload);
    void closeConn(const std::shared_ptr<Conn> &conn);
    std::size_t queuedTotalLocked() const;

    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::unique_ptr<WorkerPool> pool_;
};

} // namespace manna::harness::server

#endif // MANNA_HARNESS_SERVER_HH
