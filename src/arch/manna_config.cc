#include "manna_config.hh"

#include "common/error.hh"
#include "common/hash.hh"
#include "common/strutil.hh"

namespace manna::arch
{

Bytes
MannaConfig::totalOnChipBytes() const
{
    const Bytes perTile = matrixBufferBytes + matrixScratchpadBytes +
                          vectorBufferBytes + vectorScratchpadBytes +
                          emacsPerTile * rfWordsPerEmac * kWordBytes;
    return numTiles * perTile + controllerBufferBytes;
}

double
MannaConfig::aggregateMatrixBandwidthGBs() const
{
    return static_cast<double>(numTiles * matrixBufferWidthWords *
                               kWordBytes) *
           clockMhz * 1e6 / 1e9;
}

void
MannaConfig::validate() const
{
    // Invalid configurations are reportable, not process-fatal: a
    // sweep containing one bad point must isolate it, so every check
    // throws a ConfigError carrying this config's fingerprint.
    const auto reject = [this](const std::string &message) {
        throw ConfigError(message, ErrorContext{fingerprint(), ""});
    };
    if (numTiles == 0 || !isPowerOfTwo(numTiles))
        reject(strformat(
            "numTiles must be a nonzero power of two (got %zu); the "
            "H-tree NoC requires it",
            numTiles));
    if (emacsPerTile == 0 || !isPowerOfTwo(emacsPerTile))
        reject(strformat(
            "emacsPerTile must be a nonzero power of two (got %zu)",
            emacsPerTile));
    if (matrixBufferWidthWords == 0 ||
        matrixBufferWidthWords > emacsPerTile)
        reject(strformat(
            "matrixBufferWidthWords (%zu) must be in [1, emacsPerTile "
            "= %zu]",
            matrixBufferWidthWords, emacsPerTile));
    if (matrixScratchpadBytes % (2 * kWordBytes) != 0 ||
        matrixScratchpadBytes == 0)
        reject("matrixScratchpadBytes must be a nonzero multiple of "
               "two words (double buffered)");
    if (matrixScratchpadHalfWords() < matrixBufferWidthWords + 1)
        reject(strformat(
            "Matrix-Scratchpad half (%zu words) cannot hold even one "
            "padded row of %zu words",
            matrixScratchpadHalfWords(), matrixBufferWidthWords + 1));
    if (vectorScratchpadBytes == 0 || vectorBufferBytes == 0 ||
        matrixBufferBytes == 0)
        reject("buffer capacities must be nonzero");
    if (clockMhz <= 0.0)
        reject("clockMhz must be positive");
    if (sfusPerTile == 0)
        reject("sfusPerTile must be nonzero");
    if (nocLinkWordsPerCycle == 0)
        reject("nocLinkWordsPerCycle must be nonzero");
    if (systolicRows == 0 || systolicCols == 0)
        reject("systolic array dimensions must be nonzero");
    if (!hasEmac && elwisePenaltyNoEmac == 0)
        reject("elwisePenaltyNoEmac must be nonzero when "
               "hasEmac=false");
}

std::uint64_t
MannaConfig::fingerprint() const
{
    // Every field, in declaration order. Adding a field without
    // folding it in here would let the compile cache alias distinct
    // configurations, so keep the two in sync.
    Fnv1a h;
    h.u64(numTiles)
        .f64(clockMhz)
        .u64(emacsPerTile)
        .u64(rfWordsPerEmac)
        .u64(matrixBufferBytes)
        .u64(matrixBufferWidthWords)
        .u64(matrixScratchpadBytes)
        .u64(vectorBufferBytes)
        .u64(vectorScratchpadBytes)
        .u64(vectorDmaWidthWords)
        .u64(instMemEntries)
        .u64(sfusPerTile)
        .u64(sfuExpCycles)
        .u64(sfuPowCycles)
        .u64(sfuDivCycles)
        .u64(sfuSqrtCycles)
        .u64(sfuAccCycles)
        .u64(nocLinkWordsPerCycle)
        .u64(nocHopCycles)
        .u64(systolicRows)
        .u64(systolicCols)
        .u64(controllerBufferBytes)
        .boolean(hasHbm)
        .u64(hbmModules)
        .f64(hbmBandwidthGBsPerModule)
        .f64(hbmWattsPerModule)
        .f64(hbmAreaMm2PerController)
        .boolean(hasDmat)
        .boolean(hasEmac)
        .u64(elwisePenaltyNoEmac)
        .u64(noDmatConflictFactor)
        .boolean(strictCapacity);
    return h.value();
}

std::string
MannaConfig::describe() const
{
    std::string out;
    out += strformat("Manna configuration:\n");
    out += strformat("  DiffMem tiles          : %zu\n", numTiles);
    out += strformat("  clock                  : %.0f MHz\n", clockMhz);
    out += strformat("  eMACs / tile           : %zu%s\n", emacsPerTile,
                     hasEmac ? "" : " (MAC-only, no eMAC)");
    out += strformat("  Matrix-Buffer / tile   : %s (width %zu words)\n",
                     formatBytes(matrixBufferBytes).c_str(),
                     matrixBufferWidthWords);
    out += strformat("  Matrix-Scratchpad      : %s (double buffered, "
                     "%zu banks)\n",
                     formatBytes(matrixScratchpadBytes).c_str(),
                     matrixScratchpadBanks());
    out += strformat("  Vector-Buffer / tile   : %s\n",
                     formatBytes(vectorBufferBytes).c_str());
    out += strformat("  Vector-Scratchpad      : %s (double buffered)\n",
                     formatBytes(vectorScratchpadBytes).c_str());
    out += strformat("  hardware transpose     : %s\n",
                     hasDmat ? "yes (DMAT + lateral links)" : "no");
    out += strformat("  controller tile        : %zux%zu systolic, %s\n",
                     systolicRows, systolicCols,
                     formatBytes(controllerBufferBytes).c_str());
    out += strformat("  total on-chip SRAM     : %s\n",
                     formatBytes(totalOnChipBytes()).c_str());
    out += strformat("  aggregate matrix BW    : %.2f GB/s\n",
                     aggregateMatrixBandwidthGBs());
    if (hasHbm) {
        out += strformat("  HBM                    : %zu modules x %.0f "
                         "GB/s\n",
                         hbmModules, hbmBandwidthGBsPerModule);
    }
    return out;
}

MannaConfig
MannaConfig::baseline16()
{
    return MannaConfig{};
}

MannaConfig
MannaConfig::withTiles(std::size_t tiles)
{
    MannaConfig cfg;
    cfg.numTiles = tiles;
    return cfg;
}

MannaConfig
MannaConfig::memHeavy()
{
    MannaConfig cfg;
    cfg.hasDmat = false;
    cfg.hasEmac = false;
    return cfg;
}

MannaConfig
MannaConfig::memHeavyTranspose()
{
    MannaConfig cfg;
    cfg.hasDmat = true;
    cfg.hasEmac = false;
    return cfg;
}

MannaConfig
MannaConfig::memHeavyEmac()
{
    MannaConfig cfg;
    cfg.hasDmat = false;
    cfg.hasEmac = true;
    return cfg;
}

} // namespace manna::arch
