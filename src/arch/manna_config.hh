/**
 * @file
 * Microarchitectural description of the Manna accelerator (the
 * "microarchitectural description" input to the paper's compiler,
 * Section 5.2, and the parameters of the cycle-level simulator).
 *
 * Defaults correspond to the evaluated configuration (Section 6.1):
 * 16 DiffMem tiles, 32 eMACs/tile, 2 MiB Matrix-Buffer, 16 KiB
 * double-buffered Matrix-Scratchpad, 32 KiB Vector-Buffer, 4 KiB
 * Vector-Scratchpad, an 8x8 systolic Controller tile with 5 MiB of
 * buffers, 500 MHz, FP32 everywhere.
 */

#ifndef MANNA_ARCH_MANNA_CONFIG_HH
#define MANNA_ARCH_MANNA_CONFIG_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace manna::arch
{

/**
 * Full configuration of a Manna chip.
 *
 * The ablation variants of Figure 14 are expressed through the
 * feature flags at the bottom (hasDmat / hasEmac).
 */
struct MannaConfig
{
    // ------------------------------------------------------------------
    // Chip-level organization
    // ------------------------------------------------------------------
    /** Number of DiffMem tiles (the paper evaluates 16). */
    std::size_t numTiles = 16;

    /** Clock frequency in MHz (whole chip). */
    double clockMhz = 500.0;

    // ------------------------------------------------------------------
    // DiffMem tile
    // ------------------------------------------------------------------
    /** eMAC units per tile; also the scratchpad bank count. */
    std::size_t emacsPerTile = 32;

    /** Register-file words per eMAC (holds per-head stationaries). */
    std::size_t rfWordsPerEmac = 16;

    /** Matrix-Buffer capacity per tile. */
    Bytes matrixBufferBytes = 2_MiB;

    /**
     * Words delivered per cycle from the Matrix-Buffer to the
     * Matrix-Scratchpad (the buffer's "memory width"; also blockM).
     * 32 words x 4 B x 500 MHz x 16 tiles ~= 1.02 TB/s, the paper's
     * "1.2 TB/s of effective bandwidth".
     */
    std::size_t matrixBufferWidthWords = 32;

    /** Matrix-Scratchpad capacity per tile (total of both halves). */
    Bytes matrixScratchpadBytes = 16_KiB;

    /** Vector-Buffer capacity per tile. */
    Bytes vectorBufferBytes = 32_KiB;

    /** Vector-Scratchpad capacity per tile (total of both halves). */
    Bytes vectorScratchpadBytes = 4_KiB;

    /** Words per cycle between Vector-Buffer and Vector-Scratchpad. */
    std::size_t vectorDmaWidthWords = 8;

    /** Instruction memory capacity per tile (instructions). */
    std::size_t instMemEntries = 4096;

    // ------------------------------------------------------------------
    // Special Function Units (serial; the strong-scaling limiter)
    // ------------------------------------------------------------------
    /** Number of SFUs per tile (paper: effectively one shared path). */
    std::size_t sfusPerTile = 1;

    /** Initiation interval in cycles per element for exp/sigmoid. */
    std::size_t sfuExpCycles = 4;

    /** Cycles per element for the scalar power function. */
    std::size_t sfuPowCycles = 8;

    /** Cycles per element for divide/reciprocal. */
    std::size_t sfuDivCycles = 4;

    /** Cycles per element for sqrt. */
    std::size_t sfuSqrtCycles = 4;

    /** Cycles per element for accumulate (running sum/max). */
    std::size_t sfuAccCycles = 1;

    // ------------------------------------------------------------------
    // NoC (H-tree, reduce/broadcast only; controller tile at root)
    // ------------------------------------------------------------------
    /** Words per cycle on each H-tree link. */
    std::size_t nocLinkWordsPerCycle = 8;

    /** Latency of one H-tree hop in cycles. */
    std::size_t nocHopCycles = 2;

    // ------------------------------------------------------------------
    // Controller tile (systolic DNN accelerator)
    // ------------------------------------------------------------------
    std::size_t systolicRows = 8;
    std::size_t systolicCols = 8;

    /** Combined unified + weight buffer capacity. */
    Bytes controllerBufferBytes = 5_MiB;

    // ------------------------------------------------------------------
    // Optional HBM extension (Section 7.3)
    // ------------------------------------------------------------------
    bool hasHbm = false;
    std::size_t hbmModules = 4;
    double hbmBandwidthGBsPerModule = 256.0;
    double hbmWattsPerModule = 25.0;
    double hbmAreaMm2PerController = 35.0;

    // ------------------------------------------------------------------
    // Feature flags (Figure 14 ablations)
    // ------------------------------------------------------------------
    /**
     * Hardware-assisted transpose (DMAT + lateral eMAC links). When
     * false, transposed scratchpad reads serialize on bank conflicts.
     */
    bool hasDmat = true;

    /**
     * eMAC units (element-wise + MAC). When false, the tile has plain
     * MAC units and element-wise operations run at a throughput
     * penalty (emulated via multiply-by-one / accumulate tricks).
     */
    bool hasEmac = true;

    /**
     * Penalty factor for element-wise operations when hasEmac is
     * false (each elwise op costs this many MAC slots).
     */
    std::size_t elwisePenaltyNoEmac = 14;

    /**
     * Throughput penalty for transposed (row-dot) scratchpad access
     * when the DMAT is absent: bank conflicts partially serialize the
     * banked reads. The paper's ablation attributes a ~1.4x average
     * end-to-end speedup to the transpose hardware.
     */
    std::size_t noDmatConflictFactor = 6;

    /**
     * If true, exceeding a buffer capacity is a fatal error; if false
     * the compiler warns once and models the access as if capacity
     * were sufficient (the paper's scaled benchmarks slightly exceed
     * the stated weight-storage budget on the largest configs).
     */
    bool strictCapacity = false;

    // ------------------------------------------------------------------
    // Derived quantities
    // ------------------------------------------------------------------
    /** Seconds per cycle. */
    double cyclePeriodSec() const { return 1.0 / (clockMhz * 1e6); }

    /** Scratchpad bank count (one bank per eMAC). */
    std::size_t matrixScratchpadBanks() const { return emacsPerTile; }

    /** Capacity of one half of the double-buffered scratchpad. */
    Bytes matrixScratchpadHalfBytes() const
    {
        return matrixScratchpadBytes / 2;
    }
    Bytes vectorScratchpadHalfBytes() const
    {
        return vectorScratchpadBytes / 2;
    }

    /** Words in one half of the Matrix-Scratchpad. */
    std::size_t matrixScratchpadHalfWords() const
    {
        return matrixScratchpadHalfBytes() / kWordBytes;
    }

    /** Total on-chip SRAM across the whole chip, in bytes. */
    Bytes totalOnChipBytes() const;

    /** Aggregate Matrix-Buffer bandwidth in GB/s. */
    double aggregateMatrixBandwidthGBs() const;

    /** Validate invariants; throws manna::ConfigError (carrying this
     * config's fingerprint) on invalid configurations. */
    void validate() const;

    /**
     * Stable fingerprint over every configuration field, usable as a
     * cache key: two configs hash equal iff the compiler would see
     * identical microarchitectural inputs. Deterministic across runs.
     */
    std::uint64_t fingerprint() const;

    /** Multi-line human-readable description. */
    std::string describe() const;

    // ------------------------------------------------------------------
    // Named presets
    // ------------------------------------------------------------------
    /** The evaluated 16-tile configuration (Section 6.1). */
    static MannaConfig baseline16();

    /** Same per-tile resources with a different tile count. */
    static MannaConfig withTiles(std::size_t tiles);

    /** Figure 14 ablation variants. */
    static MannaConfig memHeavy();          ///< no DMAT, no eMAC
    static MannaConfig memHeavyTranspose(); ///< DMAT only
    static MannaConfig memHeavyEmac();      ///< eMAC only
};

} // namespace manna::arch

#endif // MANNA_ARCH_MANNA_CONFIG_HH
