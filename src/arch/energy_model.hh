/**
 * @file
 * Per-event energy model for the Manna simulator.
 *
 * The paper estimates power by synthesizing RTL to the 15 nm Nangate
 * Open Cell library (logic) and CACTI-P (SRAMs) and folding the
 * resulting per-component powers into the cycle-level simulator. We
 * do not have those tools offline, so this module substitutes an
 * analytic calibration (documented in DESIGN.md):
 *
 *  - SRAM access energy scales with the square root of the accessed
 *    bank's capacity (the standard CACTI trend) with constants chosen
 *    so the busy-chip power of the 16-tile baseline lands near the
 *    paper's 16 W TDP at 500 MHz.
 *  - Logic (eMAC, SFU, systolic MAC, NoC) energies use representative
 *    15 nm-class per-op values.
 *  - A capacity-proportional leakage power is charged for every cycle.
 *
 * Only *ratios* between designs and kernels depend on the simulator's
 * event counts; the constants here set the absolute scale.
 */

#ifndef MANNA_ARCH_ENERGY_MODEL_HH
#define MANNA_ARCH_ENERGY_MODEL_HH

#include "arch/manna_config.hh"
#include "common/types.hh"

namespace manna::arch
{

/** Event classes the simulator charges energy for. */
enum class EnergyEvent
{
    MatrixBufferAccess,     ///< one 32-bit word, Matrix-Buffer
    MatrixScratchpadAccess, ///< one 32-bit word, Matrix-Scratchpad
    VectorBufferAccess,     ///< one 32-bit word, Vector-Buffer
    VectorScratchpadAccess, ///< one 32-bit word, Vector-Scratchpad
    RegisterFileAccess,     ///< one 32-bit word, eMAC RF
    EmacMac,                ///< one FP32 fused multiply-accumulate
    EmacElwise,             ///< one FP32 element-wise add/sub/mul
    EmacLateralShift,       ///< one word moved over a lateral link
    SfuOp,                  ///< one special-function evaluation
    NocHopWord,             ///< one word across one H-tree hop
    SystolicMac,            ///< one MAC in the controller tile array
    ControllerBufferAccess, ///< one word, controller tile buffers
    InstructionIssue,       ///< decode/control overhead per instruction
    HbmAccess,              ///< one 32-bit word from/to HBM
};

/**
 * Energy model bound to a configuration.
 *
 * All energies are in picojoules; leakage is in watts.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const MannaConfig &cfg);

    /** Energy of one event occurrence in pJ. */
    Energy eventEnergyPj(EnergyEvent ev) const;

    /** Static (leakage) power of the whole chip in watts. */
    double leakageWatts() const;

    /**
     * Clock-tree / control / SRAM-periphery power in watts, charged
     * per second of execution on top of the event energies. In
     * memory-dominated accelerators this infrastructure is the
     * largest component of active power.
     */
    double infrastructureWatts() const;

    /**
     * Busy-chip dynamic power estimate in watts: all eMACs computing,
     * all Matrix-Buffers streaming at full width, NoC idle. Used for
     * calibration checks and the Table 3 TDP column.
     */
    double busyPowerWatts() const;

    /**
     * SRAM access energy per 32-bit word given the *bank* capacity,
     * following an analytic CACTI-like sqrt trend.
     */
    static Energy sramAccessPj(Bytes bankBytes);

    const MannaConfig &config() const { return cfg_; }

  private:
    MannaConfig cfg_;

    // Cached per-structure energies.
    Energy matrixBufferPj_;
    Energy matrixScratchpadPj_;
    Energy vectorBufferPj_;
    Energy vectorScratchpadPj_;
    Energy rfPj_;
    Energy controllerBufferPj_;
};

} // namespace manna::arch

#endif // MANNA_ARCH_ENERGY_MODEL_HH
