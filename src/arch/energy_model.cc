#include "energy_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace manna::arch
{

namespace
{

// Logic per-op energies (pJ), representative of a 15 nm-class node
// including pipeline registers and local wiring.
constexpr Energy kEmacMacPj = 1.5;
constexpr Energy kEmacElwisePj = 1.0;
constexpr Energy kLateralShiftPj = 0.2;
constexpr Energy kSfuOpPj = 4.0;
constexpr Energy kNocHopWordPj = 1.2;
constexpr Energy kSystolicMacPj = 1.5;
constexpr Energy kInstructionIssuePj = 6.0;
constexpr Energy kHbmAccessPj = 40.0; // ~10 pJ/bit HBM2 x 32 bits / 8

// Leakage: capacity-proportional SRAM leakage plus a fixed logic
// floor per tile.
constexpr double kLeakWattsPerMiB = 0.008;
constexpr double kLeakWattsPerTile = 0.012;

// Clock tree, instruction control, and SRAM peripheral circuitry,
// charged per second of execution. In memory-dominated designs this
// infrastructure is the largest power component; the constants are
// set so the 16-tile baseline's busy power lands near the paper's
// 16 W envelope.
constexpr double kInfraWattsPerTile = 0.45;
constexpr double kInfraWattsController = 0.8;

} // namespace

Energy
EnergyModel::sramAccessPj(Bytes bankBytes)
{
    // CACTI-like trend: energy per 32-bit access grows with the square
    // root of bank capacity. Constants calibrated so that the 16-tile
    // baseline's busy power lands near the paper's 16 W envelope.
    const double kib = static_cast<double>(bankBytes) / 1024.0;
    return 0.40 + 0.65 * std::sqrt(kib);
}

EnergyModel::EnergyModel(const MannaConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();

    // Highly banked structures are charged at their bank granularity.
    const Bytes matrixBufferBank =
        cfg_.matrixBufferBytes / cfg_.matrixScratchpadBanks();
    const Bytes matrixSpadBank =
        cfg_.matrixScratchpadBytes / cfg_.matrixScratchpadBanks();
    matrixBufferPj_ = sramAccessPj(matrixBufferBank);
    matrixScratchpadPj_ = sramAccessPj(std::max<Bytes>(matrixSpadBank, 256));
    vectorBufferPj_ = sramAccessPj(cfg_.vectorBufferBytes);
    vectorScratchpadPj_ = sramAccessPj(cfg_.vectorScratchpadBytes / 2);
    rfPj_ = 0.12; // small flop-based RF
    controllerBufferPj_ =
        sramAccessPj(cfg_.controllerBufferBytes / 16); // banked
}

Energy
EnergyModel::eventEnergyPj(EnergyEvent ev) const
{
    switch (ev) {
      case EnergyEvent::MatrixBufferAccess:
        return matrixBufferPj_;
      case EnergyEvent::MatrixScratchpadAccess:
        return matrixScratchpadPj_;
      case EnergyEvent::VectorBufferAccess:
        return vectorBufferPj_;
      case EnergyEvent::VectorScratchpadAccess:
        return vectorScratchpadPj_;
      case EnergyEvent::RegisterFileAccess:
        return rfPj_;
      case EnergyEvent::EmacMac:
        return kEmacMacPj;
      case EnergyEvent::EmacElwise:
        return kEmacElwisePj;
      case EnergyEvent::EmacLateralShift:
        return kLateralShiftPj;
      case EnergyEvent::SfuOp:
        return kSfuOpPj;
      case EnergyEvent::NocHopWord:
        return kNocHopWordPj;
      case EnergyEvent::SystolicMac:
        return kSystolicMacPj;
      case EnergyEvent::ControllerBufferAccess:
        return controllerBufferPj_;
      case EnergyEvent::InstructionIssue:
        return kInstructionIssuePj;
      case EnergyEvent::HbmAccess:
        return kHbmAccessPj;
    }
    panic("unknown energy event");
}

double
EnergyModel::leakageWatts()
const
{
    const double mib =
        static_cast<double>(cfg_.totalOnChipBytes()) / (1024.0 * 1024.0);
    return kLeakWattsPerMiB * mib +
           kLeakWattsPerTile * static_cast<double>(cfg_.numTiles + 1);
}

double
EnergyModel::infrastructureWatts() const
{
    return kInfraWattsPerTile * static_cast<double>(cfg_.numTiles) +
           kInfraWattsController;
}

double
EnergyModel::busyPowerWatts() const
{
    // Per tile per cycle at full throughput: matrixBufferWidthWords
    // buffer reads feeding the scratchpad, emacsPerTile scratchpad
    // reads feeding the eMACs, emacsPerTile MACs, and RF traffic.
    const double perTilePerCyclePj =
        static_cast<double>(cfg_.matrixBufferWidthWords) *
            (matrixBufferPj_ + matrixScratchpadPj_) +
        static_cast<double>(cfg_.emacsPerTile) *
            (matrixScratchpadPj_ + kEmacMacPj + 2.0 * rfPj_) +
        kInstructionIssuePj;

    // Controller tile: full systolic array + buffer traffic.
    const double ctrlPerCyclePj =
        static_cast<double>(cfg_.systolicRows * cfg_.systolicCols) *
            kSystolicMacPj +
        static_cast<double>(cfg_.systolicRows + cfg_.systolicCols) *
            controllerBufferPj_;

    const double cyclesPerSec = cfg_.clockMhz * 1e6;
    const double dynamicWatts =
        (static_cast<double>(cfg_.numTiles) * perTilePerCyclePj +
         ctrlPerCyclePj) *
        1e-12 * cyclesPerSec;
    return dynamicWatts + infrastructureWatts() + leakageWatts();
}

} // namespace manna::arch
