#include "area_model.hh"

#include "arch/energy_model.hh"
#include "common/strutil.hh"

namespace manna::arch
{

namespace
{

// 15 nm-class densities/cost constants, calibrated so that the
// baseline configuration (38 MiB SRAM, 512 eMACs, 16 tiles) totals
// ~40 mm^2 as reported in Table 3.
constexpr double kSramMm2PerMiB = 0.90;
constexpr double kEmacMm2 = 0.0016;       // per eMAC incl. RF
constexpr double kSfuMm2 = 0.02;          // per SFU
constexpr double kNocMm2PerRouter = 0.03;
constexpr double kSystolicMacMm2 = 0.0016;
constexpr double kDmatMm2PerTile = 0.03;
constexpr double kMiscMm2PerTile = 0.05;
constexpr double kMiscMm2Fixed = 0.5;

} // namespace

AreaBreakdown
areaOf(const MannaConfig &cfg)
{
    AreaBreakdown a;
    const double mib =
        static_cast<double>(cfg.totalOnChipBytes()) / (1024.0 * 1024.0);
    a.sram = kSramMm2PerMiB * mib;
    a.emacs = kEmacMm2 *
              static_cast<double>(cfg.numTiles * cfg.emacsPerTile);
    a.sfu = kSfuMm2 * static_cast<double>(cfg.numTiles * cfg.sfusPerTile);
    // One router per tile plus the internal H-tree nodes (~numTiles).
    a.noc = kNocMm2PerRouter * static_cast<double>(2 * cfg.numTiles);
    a.controller = kSystolicMacMm2 *
                   static_cast<double>(cfg.systolicRows *
                                       cfg.systolicCols) +
                   0.1;
    a.dmat = kDmatMm2PerTile * static_cast<double>(cfg.numTiles) *
             (cfg.hasDmat ? 1.0 : 0.5);
    a.misc = kMiscMm2Fixed +
             kMiscMm2PerTile * static_cast<double>(cfg.numTiles);
    if (cfg.hasHbm)
        a.hbmPhy = cfg.hbmAreaMm2PerController *
                   static_cast<double>(cfg.hbmModules);
    return a;
}

double
tdpWatts(const MannaConfig &cfg)
{
    // TDP is the thermal design envelope: typical busy power plus a
    // conventional ~40% margin for worst-case activity.
    constexpr double kThermalMargin = 1.4;
    const EnergyModel energy(cfg);
    double watts = energy.busyPowerWatts() * kThermalMargin;
    if (cfg.hasHbm)
        watts += cfg.hbmWattsPerModule *
                 static_cast<double>(cfg.hbmModules);
    return watts;
}

std::string
renderArea(const AreaBreakdown &a)
{
    std::string out;
    out += strformat("  SRAM            %7.2f mm^2\n", a.sram);
    out += strformat("  eMAC arrays     %7.2f mm^2\n", a.emacs);
    out += strformat("  SFUs            %7.2f mm^2\n", a.sfu);
    out += strformat("  NoC             %7.2f mm^2\n", a.noc);
    out += strformat("  controller tile %7.2f mm^2\n", a.controller);
    out += strformat("  DMA/DMAT        %7.2f mm^2\n", a.dmat);
    out += strformat("  misc            %7.2f mm^2\n", a.misc);
    if (a.hbmPhy > 0.0)
        out += strformat("  HBM PHYs        %7.2f mm^2\n", a.hbmPhy);
    out += strformat("  total           %7.2f mm^2\n", a.total());
    return out;
}

} // namespace manna::arch
