/**
 * @file
 * Analytic die-area model for Manna configurations.
 *
 * Substitutes the paper's synthesis-based area numbers with a
 * component-level analytic model calibrated so the 16-tile baseline
 * lands near the reported ~40 mm^2 at 15 nm (most of which is SRAM).
 * Also provides the HBM scale-out accounting of Section 7.3
 * (each HBM2 controller adds ~35 mm^2; each module adds ~25 W TDP).
 */

#ifndef MANNA_ARCH_AREA_MODEL_HH
#define MANNA_ARCH_AREA_MODEL_HH

#include <string>

#include "arch/manna_config.hh"

namespace manna::arch
{

/** Per-component area breakdown in mm^2. */
struct AreaBreakdown
{
    double sram = 0.0;       ///< all on-chip SRAMs
    double emacs = 0.0;      ///< eMAC arrays + RFs + lateral links
    double sfu = 0.0;        ///< special function units
    double noc = 0.0;        ///< H-tree routers and links
    double controller = 0.0; ///< systolic array and its control
    double dmat = 0.0;       ///< DMA / DMAT engines
    double misc = 0.0;       ///< instruction memories, control, pads
    double hbmPhy = 0.0;     ///< HBM controllers/PHYs if enabled

    double total() const
    {
        return sram + emacs + sfu + noc + controller + dmat + misc +
               hbmPhy;
    }
};

/** Compute the area breakdown of a configuration. */
AreaBreakdown areaOf(const MannaConfig &cfg);

/** TDP estimate in watts (busy power plus HBM modules if enabled). */
double tdpWatts(const MannaConfig &cfg);

/** Render the breakdown as a short report. */
std::string renderArea(const AreaBreakdown &area);

} // namespace manna::arch

#endif // MANNA_ARCH_AREA_MODEL_HH
