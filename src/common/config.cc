#include "config.hh"

#include "logging.hh"
#include "strutil.hh"

namespace manna
{

Config
Config::fromArgs(int argc, const char *const *argv, int firstArg)
{
    Config cfg;
    if (argc > 0 && firstArg > 0)
        cfg.exePath_ = argv[0];
    for (int i = firstArg; i < argc; ++i) {
        std::string tok = argv[i];
        // Accept GNU-style "--key=value" as a synonym for "key=value",
        // and a bare "--flag" as the boolean "flag=1" (dashes in the
        // flag name map to underscores, so "--dump-stats" sets
        // "dump_stats").
        const bool dashed = tok.rfind("--", 0) == 0;
        if (dashed)
            tok.erase(0, 2);
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            if (dashed && eq == std::string::npos && !tok.empty()) {
                for (char &c : tok)
                    if (c == '-')
                        c = '_';
                cfg.set(tok, "1");
                continue;
            }
            fatal("malformed option '%s' (expected key=value)",
                  tok.c_str());
        }
        cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    auto v = parseInt(it->second);
    if (!v)
        fatal("option '%s=%s' is not an integer", key.c_str(),
              it->second.c_str());
    return *v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    auto v = parseDouble(it->second);
    if (!v)
        fatal("option '%s=%s' is not a number", key.c_str(),
              it->second.c_str());
    return *v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string v = toLower(it->second);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("option '%s=%s' is not a boolean", key.c_str(),
          it->second.c_str());
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

} // namespace manna
