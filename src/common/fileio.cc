#include "fileio.hh"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna
{

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

bool
writeFileAtomic(const std::string &path, std::string_view content)
{
    // The temp file must live on the same filesystem as the target
    // for rename() to be atomic, so it is a sibling, made unique per
    // process (concurrent writers of *different* targets never
    // collide; same-target writers last-write-win, which rename()
    // keeps atomic anyway).
    const std::string tmp =
        path + strformat(".tmp.%d", static_cast<int>(::getpid()));
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("cannot create '%s' (%s)", tmp.c_str(),
             std::strerror(errno));
        return false;
    }
    std::size_t written = 0;
    while (written < content.size()) {
        const ssize_t n = ::write(fd, content.data() + written,
                                  content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("write to '%s' failed (%s)", tmp.c_str(),
                 std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        warn("fsync of '%s' failed (%s)", tmp.c_str(),
             std::strerror(errno));
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("rename '%s' -> '%s' failed (%s)", tmp.c_str(),
             path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
touchFile(const std::string &path)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd < 0)
        return false;
    // futimens(fd, nullptr) sets both timestamps to now.
    const bool ok = ::futimens(fd, nullptr) == 0;
    ::close(fd);
    return ok;
}

std::optional<std::size_t>
fileSizeBytes(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return std::nullopt;
    return static_cast<std::size_t>(st.st_size);
}

std::string
fileTail(const std::string &path, std::size_t maxLines)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return "";
    // Cap the read at the final 64 KiB: a hung worker can leave a
    // huge log, and the tail is all the triage needs.
    constexpr std::size_t kCap = 64 * 1024;
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size <= 0) {
        ::close(fd);
        return "";
    }
    const std::size_t want =
        static_cast<std::size_t>(size) < kCap
            ? static_cast<std::size_t>(size)
            : kCap;
    std::string data(want, '\0');
    std::size_t got = 0;
    if (::lseek(fd, size - static_cast<off_t>(want), SEEK_SET) >= 0) {
        while (got < want) {
            const ssize_t n =
                ::read(fd, data.data() + got, want - got);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            got += static_cast<std::size_t>(n);
        }
    }
    ::close(fd);
    data.resize(got);
    while (!data.empty() && data.back() == '\n')
        data.pop_back();
    if (data.empty())
        return "";
    // Walk back maxLines newlines from the end.
    std::size_t start = data.size();
    std::size_t lines = 0;
    while (start > 0 && lines < maxLines) {
        const std::size_t nl = data.rfind('\n', start - 1);
        if (nl == std::string::npos) {
            start = 0;
            break;
        }
        ++lines;
        if (lines == maxLines) {
            start = nl + 1;
            break;
        }
        start = nl;
    }
    return data.substr(start);
}

std::optional<double>
fileAgeSeconds(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return std::nullopt;
    struct timespec now;
    ::clock_gettime(CLOCK_REALTIME, &now);
    const double age =
        static_cast<double>(now.tv_sec - st.st_mtim.tv_sec) +
        static_cast<double>(now.tv_nsec - st.st_mtim.tv_nsec) * 1e-9;
    return age > 0.0 ? age : 0.0;
}

} // namespace manna
