#include "fileio.hh"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna
{

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

bool
writeFileAtomic(const std::string &path, std::string_view content)
{
    // The temp file must live on the same filesystem as the target
    // for rename() to be atomic, so it is a sibling, made unique per
    // process (concurrent writers of *different* targets never
    // collide; same-target writers last-write-win, which rename()
    // keeps atomic anyway).
    const std::string tmp =
        path + strformat(".tmp.%d", static_cast<int>(::getpid()));
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("cannot create '%s' (%s)", tmp.c_str(),
             std::strerror(errno));
        return false;
    }
    std::size_t written = 0;
    while (written < content.size()) {
        const ssize_t n = ::write(fd, content.data() + written,
                                  content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("write to '%s' failed (%s)", tmp.c_str(),
                 std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        warn("fsync of '%s' failed (%s)", tmp.c_str(),
             std::strerror(errno));
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("rename '%s' -> '%s' failed (%s)", tmp.c_str(),
             path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
touchFile(const std::string &path)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd < 0)
        return false;
    // futimens(fd, nullptr) sets both timestamps to now.
    const bool ok = ::futimens(fd, nullptr) == 0;
    ::close(fd);
    return ok;
}

std::optional<double>
fileAgeSeconds(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return std::nullopt;
    struct timespec now;
    ::clock_gettime(CLOCK_REALTIME, &now);
    const double age =
        static_cast<double>(now.tv_sec - st.st_mtim.tv_sec) +
        static_cast<double>(now.tv_nsec - st.st_mtim.tv_nsec) * 1e-9;
    return age > 0.0 ? age : 0.0;
}

} // namespace manna
