/**
 * @file
 * Fundamental scalar types shared across the Manna reproduction.
 */

#ifndef MANNA_COMMON_TYPES_HH
#define MANNA_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace manna
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Energy in picojoules. */
using Energy = double;

/** Time in seconds (derived from Cycle / frequency). */
using Seconds = double;

/** Byte count. */
using Bytes = std::uint64_t;

/** Generic element/operation count. */
using Count = std::uint64_t;

/** Word size of all datapaths in this design: FP32. */
constexpr Bytes kWordBytes = 4;

/** KiB/MiB helpers for configuration literals. */
constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator""_MiB(unsigned long long v)
{
    return v * 1024ull * 1024ull;
}

/** Integer ceiling division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

/** Round @p v up to the next multiple of @p align (align > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return ceilDiv(v, align) * align;
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 for a nonzero value. */
constexpr std::uint32_t
log2Floor(std::uint64_t v)
{
    std::uint32_t r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2; log2Ceil(1) == 0. */
constexpr std::uint32_t
log2Ceil(std::uint64_t v)
{
    return v <= 1 ? 0 : log2Floor(v - 1) + 1;
}

} // namespace manna

#endif // MANNA_COMMON_TYPES_HH
