/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic inputs in the reproduction (synthetic weights, task
 * sequences, random graphs) draw from this generator so that every
 * experiment is bit-reproducible given a seed.
 */

#ifndef MANNA_COMMON_RNG_HH
#define MANNA_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace manna
{

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Chosen over std::mt19937 for speed and for a guaranteed-stable
 * stream across standard library implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Gaussian with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Fork a decorrelated child stream (for per-component seeding). */
    Rng fork();

  private:
    std::uint64_t state_[4];
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace manna

#endif // MANNA_COMMON_RNG_HH
