#include "event_log.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <time.h>
#include <unistd.h>

#include "common/config.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::events
{

namespace
{

/** Registry of span/event names. The docs lint
 * (scripts/check_docs.sh, check #7) extracts this array and diffs it
 * two-way against the "Harness span and event catalog" section of
 * docs/OBSERVABILITY.md, exactly like the fault-site registry of
 * common/fault.cc. Emission sites assert membership, so a call site
 * cannot use a name the catalog does not document. */
const char *const kEventNames[] = {
    // spans (B/E pairs)
    "sweep.run",
    "job.run",
    "job.attempt",
    "journal.load",
    "journal.append",
    "compile.model",
    "artifact.load",
    "artifact.store",
    "proc.spawn",
    "shard.partition",
    "shard.round",
    "shard.spawn",
    "shard.wait",
    "shard.merge",
    "server.run",
    "server.conn",
    // instants
    "job.restored",
    "job.retry",
    "job.cancelled",
    "sweep.interrupted",
    "compile.cache.hit",
    "compile.cache.miss",
    "shard.worker.lost",
    "shard.worker.timeout",
    "shard.worker.hung",
    "shard.poisoned",
    "fault.injected",
    "server.accept",
    "server.retry_after",
    "job.enqueue",
    "job.steal",
    "log.warn",
    "log.info",
};

constexpr std::size_t kNumEventNames =
    sizeof(kEventNames) / sizeof(kEventNames[0]);

/** Flush the buffer to the file every this many events: a killed
 * process loses at most one batch (the journal's posture). */
constexpr std::size_t kFlushBatch = 256;

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

namespace detail
{
std::atomic<bool> gEnabled{false};
}

std::size_t
eventNameCount()
{
    return kNumEventNames;
}

bool
isRegisteredEventName(std::string_view name)
{
    for (const char *n : kEventNames)
        if (name == n)
            return true;
    return false;
}

std::uint64_t
wallClockMicros()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

// ---------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------

EventLog &
EventLog::instance()
{
    static EventLog log;
    return log;
}

EventLog::~EventLog()
{
    close();
}

bool
EventLog::open(const std::string &path, const std::string &role,
               std::uint64_t syncUs, std::size_t maxEvents)
{
    if (path.empty())
        return false;
    // warn() routes into this log when armed, so never warn while
    // holding mu_ — collect the complaint and raise it after unlock.
    std::string complaint;
    const bool ok = [&] {
        std::lock_guard<std::mutex> lock(mu_);
        if (file_) {
            complaint = strformat(
                "event log already open at '%s'; ignoring '%s'",
                path_.c_str(), path.c_str());
            return false;
        }
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            complaint = strformat("cannot open event log '%s' (%s)",
                                  path.c_str(),
                                  std::strerror(errno));
            return false;
        }
        file_ = f;
        path_ = path;
        role_ = role;
        limit_ = maxEvents > 0 ? maxEvents : kDefaultLimit;
        written_ = 0;
        dropped_ = 0;
        monoEpochNs_ = monotonicNs();
        tids_.clear();
        buffer_.clear();
        // Each open starts a fresh merge list with the own path
        // first; worker registrations belong to one log lifetime.
        mergeFiles_.clear();
        mergeFiles_.push_back(path_);
        // Header: the wall/monotonic clock pair sampled together is
        // the file's alignment anchor; sync_us carries the
        // coordinator's spawn-time wall clock for the cross-host
        // clamp.
        std::string header = strformat(
            "{\"schema\": \"manna-events-v1\", \"role\": \"%s\", "
            "\"pid\": %ld, \"wall_us\": %llu, \"mono_ns\": %llu, "
            "\"sync_us\": %llu}\n",
            jsonEscape(role_).c_str(), static_cast<long>(::getpid()),
            static_cast<unsigned long long>(wallClockMicros()),
            static_cast<unsigned long long>(monoEpochNs_),
            static_cast<unsigned long long>(syncUs));
        std::fwrite(header.data(), 1, header.size(), file_);
        std::fflush(file_);
        return true;
    }();
    if (!complaint.empty())
        warn("%s", complaint.c_str());
    if (ok)
        detail::gEnabled.store(true, std::memory_order_relaxed);
    return ok;
}

void
EventLog::close()
{
    detail::gEnabled.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    flushLocked();
    // Trailer: lets the merger report drops without scanning counts.
    const std::string trailer = strformat(
        "{\"schema\": \"manna-events-v1-end\", \"written\": %llu, "
        "\"dropped\": %llu}\n",
        static_cast<unsigned long long>(written_),
        static_cast<unsigned long long>(dropped_));
    std::fwrite(trailer.data(), 1, trailer.size(), file_);
    std::fflush(file_);
    ::fsync(::fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
    path_.clear();
}

void
EventLog::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    flushLocked();
    std::fflush(file_);
}

std::string
EventLog::path()
{
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
}

std::uint32_t
EventLog::tidLocked()
{
    const auto id = std::this_thread::get_id();
    const auto it = tids_.find(id);
    if (it != tids_.end())
        return it->second;
    const auto tid = static_cast<std::uint32_t>(tids_.size());
    tids_.emplace(id, tid);
    return tid;
}

void
EventLog::flushLocked()
{
    for (const Record &r : buffer_) {
        std::string line = strformat(
            "{\"name\": \"%s\", \"ph\": \"%c\", \"t\": %llu, "
            "\"tid\": %u, \"id\": %llu",
            r.name, r.phase, static_cast<unsigned long long>(r.t),
            r.tid, static_cast<unsigned long long>(r.id));
        if (!r.detail.empty()) {
            line += ", \"detail\": \"";
            line += jsonEscape(r.detail);
            line += "\"";
        }
        line += "}\n";
        std::fwrite(line.data(), 1, line.size(), file_);
        ++written_;
    }
    buffer_.clear();
}

void
EventLog::emit(const char *name, char phase, std::uint64_t id,
               const std::string &detail)
{
    MANNA_ASSERT(isRegisteredEventName(name),
                 "event name '%s' is not in the kEventNames registry",
                 name);
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    if (written_ + buffer_.size() >= limit_) {
        ++dropped_;
        return;
    }
    Record r;
    r.name = name;
    r.phase = phase;
    r.t = monotonicNs() - monoEpochNs_;
    r.tid = tidLocked();
    r.id = id;
    r.detail = detail;
    buffer_.push_back(std::move(r));
    if (buffer_.size() >= kFlushBatch) {
        flushLocked();
        std::fflush(file_);
    }
}

std::uint64_t
EventLog::beginSpan(const char *name, const std::string &detail)
{
    if (!enabled())
        return 0;
    const std::uint64_t id =
        nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    emit(name, 'B', id, detail);
    return id;
}

void
EventLog::endSpan(const char *name, std::uint64_t id,
                  const std::string &detail)
{
    if (id == 0 || !enabled())
        return;
    emit(name, 'E', id, detail);
}

void
EventLog::instant(const char *name, const std::string &detail)
{
    if (!enabled())
        return;
    emit(name, 'i', 0, detail);
}

std::uint64_t
EventLog::dropped()
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void
EventLog::registerMergeFile(const std::string &path)
{
    if (path.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string &p : mergeFiles_)
        if (p == path)
            return;
    mergeFiles_.push_back(path);
}

std::vector<std::string>
EventLog::mergeFiles()
{
    std::lock_guard<std::mutex> lock(mu_);
    return mergeFiles_;
}

// ---------------------------------------------------------------------
// Knob parsing
// ---------------------------------------------------------------------

namespace
{

std::size_t
defaultEventsLimit()
{
    if (const char *env = std::getenv("MANNA_EVENTS_LIMIT")) {
        const auto v = parseInt(env);
        if (v && *v > 0)
            return static_cast<std::size_t>(*v);
        warn("ignoring invalid MANNA_EVENTS_LIMIT='%s'", env);
    }
    return EventLog::kDefaultLimit;
}

} // namespace

void
configureFromConfig(const Config &cfg, const std::string &role)
{
    const char *env = std::getenv("MANNA_EVENTS");
    const std::string path =
        cfg.getString("events", env ? env : "");
    if (path.empty())
        return;
    const std::size_t limit = static_cast<std::size_t>(
        std::max<std::int64_t>(
            1, cfg.getInt("events_limit",
                          static_cast<std::int64_t>(
                              defaultEventsLimit()))));
    // event_sync= is injected by the shard coordinator at spawn time
    // (never user-facing): the coordinator's wall clock, for the
    // merger's offset clamp.
    const std::uint64_t syncUs = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, cfg.getInt("event_sync", 0)));
    EventLog::instance().open(path, role, syncUs, limit);
}

// ---------------------------------------------------------------------
// Parsing manna-events-v1 files back
// ---------------------------------------------------------------------

namespace
{

/** Extract the raw (still-escaped) JSON string value of @p key, e.g.
 * key "\"name\": \"". Returns false when absent or unterminated. */
bool
extractRawString(const std::string &line, const char *key,
                 std::string &out)
{
    const auto pos = line.find(key);
    if (pos == std::string::npos)
        return false;
    std::size_t i = pos + std::strlen(key);
    std::string value;
    while (i < line.size()) {
        const char c = line[i];
        if (c == '"') {
            out = std::move(value);
            return true;
        }
        if (c == '\\') {
            if (i + 1 >= line.size())
                return false;
            value += c;
            value += line[i + 1];
            i += 2;
            continue;
        }
        value += c;
        ++i;
    }
    return false;
}

bool
extractU64(const std::string &line, const char *key,
           std::uint64_t &out)
{
    const auto pos = line.find(key);
    if (pos == std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const char *start = line.c_str() + pos + std::strlen(key);
    const unsigned long long v = std::strtoull(start, &end, 10);
    if (end == start || errno != 0)
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

} // namespace

ParsedEventFile
parseEventFile(const std::string &path)
{
    ParsedEventFile out;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return out;
    std::string line;
    char buf[4096];
    bool sawHeader = false;
    auto handleLine = [&](const std::string &l) {
        const std::string t = trim(l);
        if (t.empty())
            return;
        if (t.find("\"schema\"") != std::string::npos) {
            if (t.find("manna-events-v1-end") != std::string::npos) {
                extractU64(t, "\"dropped\": ", out.dropped);
                return;
            }
            if (t.find("manna-events-v1") == std::string::npos) {
                ++out.skippedLines;
                return;
            }
            std::uint64_t pid = 0;
            if (!extractRawString(t, "\"role\": \"", out.role) ||
                !extractU64(t, "\"wall_us\": ", out.wallUs) ||
                !extractU64(t, "\"mono_ns\": ", out.monoNs)) {
                ++out.skippedLines;
                return;
            }
            extractU64(t, "\"sync_us\": ", out.syncUs);
            if (extractU64(t, "\"pid\": ", pid))
                out.pid = static_cast<long>(pid);
            sawHeader = true;
            return;
        }
        ParsedEvent ev;
        std::string phase;
        std::uint64_t tid = 0;
        if (!extractRawString(t, "\"name\": \"", ev.name) ||
            !extractRawString(t, "\"ph\": \"", phase) ||
            phase.size() != 1 ||
            !extractU64(t, "\"t\": ", ev.t) ||
            !extractU64(t, "\"tid\": ", tid) ||
            !extractU64(t, "\"id\": ", ev.id)) {
            ++out.skippedLines; // torn write or foreign line
            return;
        }
        ev.phase = phase[0];
        ev.tid = static_cast<std::uint32_t>(tid);
        extractRawString(t, "\"detail\": \"", ev.detail);
        out.events.push_back(std::move(ev));
    };
    while (std::fgets(buf, sizeof(buf), f)) {
        line += buf;
        if (line.empty() || line.back() != '\n') {
            if (!std::feof(f))
                continue; // long line: keep accumulating
        }
        handleLine(line);
        line.clear();
    }
    if (!line.empty())
        handleLine(line); // unterminated tail (torn final write)
    std::fclose(f);
    out.ok = sawHeader;
    return out;
}

} // namespace manna::events
