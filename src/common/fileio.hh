/**
 * @file
 * Small POSIX file helpers for the crash-safety machinery: atomic
 * whole-file publication (write temp + fsync + rename) so a killed
 * process never leaves a half-written stats/bench-JSON/report
 * artifact, plus the mtime-based primitives the shard heartbeat
 * liveness protocol is built on (docs/DISTRIBUTED.md).
 */

#ifndef MANNA_COMMON_FILEIO_HH
#define MANNA_COMMON_FILEIO_HH

#include <optional>
#include <string>
#include <string_view>

namespace manna
{

/** Plain stat()-based existence check. */
bool fileExists(const std::string &path);

/**
 * Publish @p content at @p path atomically: write a sibling temp
 * file, fsync it, then rename() over the target. Readers either see
 * the previous file or the complete new one, never a torn write.
 * Returns false (with a warning) on any failure; the target is left
 * untouched in that case.
 */
bool writeFileAtomic(const std::string &path,
                     std::string_view content);

/** Create @p path if missing and bump its mtime to now (the shard
 * heartbeat primitive). Returns false on failure. */
bool touchFile(const std::string &path);

/** Seconds since @p path's last mtime; nullopt when it does not
 * exist (or cannot be stat'ed). */
std::optional<double> fileAgeSeconds(const std::string &path);

/** Size of @p path in bytes; nullopt when it cannot be stat'ed. */
std::optional<std::size_t> fileSizeBytes(const std::string &path);

/**
 * The last @p maxLines lines of @p path (at most the final 64 KiB),
 * joined with '\n' and without a trailing newline; "" when the file
 * is missing or empty. The shard coordinator uses this to surface a
 * lost worker's captured stderr in its warning instead of discarding
 * it.
 */
std::string fileTail(const std::string &path,
                     std::size_t maxLines = 20);

} // namespace manna

#endif // MANNA_COMMON_FILEIO_HH
