/**
 * @file
 * Structured, recoverable error types.
 *
 * Historically every invalid input killed the process: config
 * validation called fatal() (exit) and structural compiler checks
 * called panic() (abort). A production sweep serving thousands of
 * simulation points must instead isolate the one bad point, so the
 * error paths that a sweep job can reach throw a manna::Error
 * carrying (a) which stage failed — configuration, assembly/codegen,
 * or simulation — and (b) enough context (config fingerprint, job
 * label) for the sweep's failure summary to identify the point
 * without re-running it.
 *
 * panic()/MANNA_ASSERT stay abort-based: they flag bugs in this
 * library, not bad inputs, and a core dump is the right artifact.
 */

#ifndef MANNA_COMMON_ERROR_HH
#define MANNA_COMMON_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace manna
{

/** Which stage of the pipeline rejected the work. */
enum class ErrorKind
{
    Config,   ///< invalid configuration (user input)
    Assembly, ///< codegen / program structural validation failed
    Sim,      ///< simulation failed or was cancelled
    Io,       ///< journal/report I/O failed (write, fsync, disk full)
};

const char *toString(ErrorKind kind);

/** Optional provenance attached to an Error. */
struct ErrorContext
{
    /** Stable fingerprint of the offending configuration (0 = unset). */
    std::uint64_t fingerprint = 0;

    /** Human label of the sweep job the error belongs to (may be
     * empty; the sweep runner fills it in at the worker boundary). */
    std::string job;
};

/**
 * Base class of every recoverable Manna error. what() is the bare
 * message; describe() prepends the kind and appends the context.
 */
class Error : public std::runtime_error
{
  public:
    Error(ErrorKind kind, const std::string &message,
          ErrorContext context = {});

    ErrorKind kind() const { return kind_; }
    const ErrorContext &context() const { return context_; }

    /** "ConfigError: <message> [fp=0x... job=...]" */
    std::string describe() const;

  private:
    ErrorKind kind_;
    ErrorContext context_;
};

/** The user's configuration cannot be processed. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string &message,
                         ErrorContext context = {})
        : Error(ErrorKind::Config, message, std::move(context))
    {}
};

/** Code generation / program structural validation failed. */
class AssemblyError : public Error
{
  public:
    explicit AssemblyError(const std::string &message,
                           ErrorContext context = {})
        : Error(ErrorKind::Assembly, message, std::move(context))
    {}
};

/** A simulation failed, diverged, or was cancelled. */
class SimError : public Error
{
  public:
    explicit SimError(const std::string &message,
                      ErrorContext context = {})
        : Error(ErrorKind::Sim, message, std::move(context))
    {}
};

/** A filesystem operation the harness depends on failed — journal
 * write/fsync, report publication. Carries errno context in the
 * message (see SweepJournal::append). */
class IoError : public Error
{
  public:
    explicit IoError(const std::string &message,
                     ErrorContext context = {})
        : Error(ErrorKind::Io, message, std::move(context))
    {}
};

} // namespace manna

#endif // MANNA_COMMON_ERROR_HH
