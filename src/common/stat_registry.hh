/**
 * @file
 * Hierarchical statistics registry for the observability layer.
 *
 * A StatRegistry is a flat, deterministic map from dotted component
 * paths ("tile.0.emac.busy_cycles", "noc.reduce_ops", "chip.cycles")
 * to double-valued counters — the gem5-style "one registry per run"
 * pattern. Components keep collecting into their local StatGroups
 * during simulation (cheap, no string concatenation on the hot path);
 * at report time the chip folds every group into one registry under
 * its component prefix. The registry then travels inside
 * sim::RunReport / harness::MannaResult, is serialized exactly in the
 * sweep journal, aggregated across jobs into stats.json, and exported
 * as JSON for dashboards.
 *
 * Determinism contract: iteration order is key order (std::map), all
 * values are doubles, and JSON export uses 17-significant-digit
 * formatting, so two registries with equal contents render
 * byte-identically — the foundation of the jobs=1 == jobs=N
 * stats.json guarantee (see docs/OBSERVABILITY.md).
 */

#ifndef MANNA_COMMON_STAT_REGISTRY_HH
#define MANNA_COMMON_STAT_REGISTRY_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "stats.hh"

namespace manna
{

/**
 * Flat registry of dotted-path counters with deterministic iteration
 * and exact JSON round-tripping.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;

    /** Overwrite a counter. */
    void set(const std::string &key, double value);

    /** Add to a counter (creating it at zero if absent). */
    void inc(const std::string &key, double amount = 1.0);

    /** Read a counter; 0 if absent. */
    double get(const std::string &key) const;

    /** True if the counter exists. */
    bool has(const std::string &key) const;

    /** Fold a StatGroup in under "<prefix>.<key>" ("" keeps keys as
     * is). Existing counters are overwritten, not accumulated. */
    void adopt(const std::string &prefix, const StatGroup &group);

    /** Add every counter of @p other into this registry (used by the
     * sweep harness to aggregate per-job registries). */
    void merge(const StatRegistry &other);

    /** Sum of every counter matching "<prefix>." plus @p suffix, e.g.
     * sumOver("tile", "emac.busy_cycles") sums that counter across
     * all tiles. */
    double sumOver(const std::string &prefix,
                   const std::string &suffix) const;

    bool empty() const { return values_.empty(); }
    std::size_t size() const { return values_.size(); }
    void clear() { values_.clear(); }

    /** All (path, value) pairs in path order. */
    const std::map<std::string, double> &entries() const
    {
        return values_;
    }

    bool operator==(const StatRegistry &other) const
    {
        return values_ == other.values_;
    }

    /**
     * Render as one JSON object, keys in path order, values with 17
     * significant digits (exact double round-trip). @p indent > 0
     * pretty-prints with that many spaces per level.
     */
    std::string toJson(int indent = 0) const;

    /** Inverse of toJson(); nullopt on malformed input. */
    static std::optional<StatRegistry> fromJson(std::string_view text);

    /** Render as "path = value" lines, one per counter. */
    std::string render() const;

    /**
     * Attach a human-readable description to @p key. Descriptions are
     * display metadata only: they do not participate in operator==,
     * merge accumulation, or toJson()/fromJson() round-trips, so they
     * never perturb the deterministic stats contract. @p key may be a
     * dotted-suffix pattern: renderDescribed() uses the longest
     * registered suffix that matches a counter (so one
     * describe("emac.busy_cycles", ...) covers every tile).
     */
    void describe(const std::string &key, const std::string &text);

    /** The description attached to @p key: an exact match first, then
     * the longest dotted-suffix pattern; "" when none matches. */
    std::string description(const std::string &key) const;

    /**
     * Pretty-print all counters, path-sorted and aligned, with the
     * matching description appended ("path  value  # description").
     * The --dump-stats view shared by the bench binaries.
     */
    std::string renderDescribed() const;

  private:
    std::map<std::string, double> values_;
    /** Suffix-pattern -> description; display-only (see describe()). */
    std::map<std::string, std::string> descriptions_;
};

} // namespace manna

#endif // MANNA_COMMON_STAT_REGISTRY_HH
