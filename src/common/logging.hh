/**
 * @file
 * Status-message and error-handling helpers in the spirit of gem5's
 * logging facilities.
 *
 * Two classes of error are distinguished:
 *  - panic(): an internal invariant was violated (a bug in this
 *    library). Aborts so a debugger/core dump can be attached.
 *  - fatal(): the *user's* input (configuration, benchmark selection,
 *    assembly text, ...) cannot be processed. Exits with an error code.
 *
 * warn()/inform() print advisory messages and continue.
 */

#ifndef MANNA_COMMON_LOGGING_HH
#define MANNA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace manna
{

/** Verbosity levels for inform()-style messages. */
enum class LogLevel
{
    Quiet = 0,   ///< only warnings and errors
    Normal = 1,  ///< inform() messages shown
    Verbose = 2, ///< debug() messages shown
};

/** Set the global verbosity. Thread-unsafe; call once at startup. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Tag this process's stderr diagnostics with a role ("coord",
 * "shard 2"). When set, every warn()/inform()/debugLog() line is
 * prefixed with an ISO-8601 UTC timestamp and the role, so the
 * interleaved stderr of a multi-process sweep stays attributable:
 *
 *   2026-08-08T12:34:56.789Z [shard 2] warn: ...
 *
 * Empty (the default, and for plain single-process runs) keeps the
 * classic "warn: ..." format. Thread-unsafe; set once at startup
 * (the shard layer does, from sweepOptionsFromConfig()).
 */
void setLogRole(const std::string &role);

/** Current process role tag ("" when unset). */
const std::string &logRole();

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 * Implementation detail of the panic() macro, which supplies the
 * call site so the report carries file:line.
 */
[[noreturn]] void panicAt(const char *file, int line, const char *fmt,
                          ...) __attribute__((format(printf, 3, 4)));

/**
 * Report an unrecoverable user error (bad config, bad input) and
 * exit(1). Implementation detail of the fatal() macro.
 */
[[noreturn]] void fatalAt(const char *file, int line, const char *fmt,
                          ...) __attribute__((format(printf, 3, 4)));

/**
 * gem5-style reporting macros: capture the call site so every abort
 * names the file:line that raised it, and print a one-line hint to
 * rerun under an instrumented build. Recoverable error paths (config
 * validation, codegen structural checks) throw manna::Error
 * subclasses instead — see common/error.hh.
 */
#define panic(...) ::manna::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::manna::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Print a warning; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message (LogLevel::Normal and up). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (LogLevel::Verbose only). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Implementation detail of MANNA_ASSERT. */
[[noreturn]] void panicAssertFail(const char *cond, const char *file,
                                  int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert a simulator invariant with a formatted message.
 * Compiled in all build types: simulator correctness depends on these
 * checks and their cost is negligible next to the modelled work.
 */
#define MANNA_ASSERT(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::manna::panicAssertFail(#cond, __FILE__, __LINE__,          \
                                     __VA_ARGS__);                       \
        }                                                                \
    } while (0)

} // namespace manna

#endif // MANNA_COMMON_LOGGING_HH
