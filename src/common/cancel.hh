/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is a one-way latch: the sweep runner's watchdog (or
 * any other supervisor) sets it, and the simulation's step loops poll
 * it at cheap, well-defined points — once per time step and once per
 * communication round — throwing SimError when it fires. This keeps
 * cancellation deterministic-by-construction for *successful* runs: a
 * token that never fires is a relaxed atomic load per step, with no
 * effect on simulated results.
 */

#ifndef MANNA_COMMON_CANCEL_HH
#define MANNA_COMMON_CANCEL_HH

#include <atomic>

namespace manna
{

/** One-way cancellation latch, safe to poll from the worker thread
 * while another thread fires it. */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Fire the latch. Idempotent; callable from any thread. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /** True once cancel() has been called. */
    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace manna

#endif // MANNA_COMMON_CANCEL_HH
