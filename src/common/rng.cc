#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace manna
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    MANNA_ASSERT(n > 0, "below(0) is undefined");
    // Rejection sampling for unbiased results.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    MANNA_ASSERT(lo <= hi, "range(%ld, %ld) inverted", static_cast<long>(lo),
                 static_cast<long>(hi));
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ull;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::gaussian()
{
    if (hasSpareGaussian_) {
        hasSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareGaussian_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpareGaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1342543de82ef95ull);
}

} // namespace manna
