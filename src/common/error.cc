#include "error.hh"

#include "strutil.hh"

namespace manna
{

const char *
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config:
        return "ConfigError";
      case ErrorKind::Assembly:
        return "AssemblyError";
      case ErrorKind::Sim:
        return "SimError";
      case ErrorKind::Io:
        return "IoError";
    }
    return "Error";
}

Error::Error(ErrorKind kind, const std::string &message,
             ErrorContext context)
    : std::runtime_error(message), kind_(kind),
      context_(std::move(context))
{}

std::string
Error::describe() const
{
    std::string out = toString(kind_);
    out += ": ";
    out += what();
    if (context_.fingerprint != 0 || !context_.job.empty()) {
        out += " [";
        bool first = true;
        if (!context_.job.empty()) {
            out += "job=" + context_.job;
            first = false;
        }
        if (context_.fingerprint != 0) {
            if (!first)
                out += " ";
            out += strformat("fp=0x%016llx",
                             static_cast<unsigned long long>(
                                 context_.fingerprint));
        }
        out += "]";
    }
    return out;
}

} // namespace manna
