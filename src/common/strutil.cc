#include "strutil.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cmath>

namespace manna
{

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0,
                    '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

std::optional<std::int64_t>
parseInt(std::string_view s)
{
    const std::string str = trim(s);
    if (str.empty())
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(str.c_str(), &end, 0);
    if (errno != 0 || end != str.c_str() + str.size())
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

std::optional<double>
parseDouble(std::string_view s)
{
    const std::string str = trim(s);
    if (str.empty())
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(str.c_str(), &end);
    if (errno != 0 || end != str.c_str() + str.size())
        return std::nullopt;
    return v;
}

std::string
formatBytes(std::uint64_t bytes)
{
    constexpr std::uint64_t kib = 1024ull;
    constexpr std::uint64_t mib = kib * 1024ull;
    constexpr std::uint64_t gib = mib * 1024ull;
    if (bytes >= gib && bytes % gib == 0)
        return strformat("%llu GiB",
                         static_cast<unsigned long long>(bytes / gib));
    if (bytes >= mib && bytes % mib == 0)
        return strformat("%llu MiB",
                         static_cast<unsigned long long>(bytes / mib));
    if (bytes >= kib && bytes % kib == 0)
        return strformat("%llu KiB",
                         static_cast<unsigned long long>(bytes / kib));
    if (bytes >= mib)
        return strformat("%.1f MiB", static_cast<double>(bytes) / mib);
    if (bytes >= kib)
        return strformat("%.1f KiB", static_cast<double>(bytes) / kib);
    return strformat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string
formatSig(double v, int digits)
{
    if (v == 0.0 || !std::isfinite(v))
        return strformat("%.*g", digits, v);
    return strformat("%.*g", digits, v);
}

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

} // namespace manna
