#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "strutil.hh"

namespace manna
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out += c;
            break;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // 17 significant digits round-trip every IEEE-754 double exactly;
    // the registry's determinism contract depends on it.
    return strformat("%.17g", v);
}

namespace
{

/** Cursor-based recursive-descent JSON scanner (validation only). */
class JsonScanner
{
  public:
    explicit JsonScanner(std::string_view text) : text_(text) {}

    bool
    validate()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    /** Scan one string literal, unescaping into @p out. */
    bool
    string(std::string *out)
    {
        if (!consume('"'))
            return false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false;
            if (c != '\\') {
                if (out)
                    out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                if (out)
                    out->push_back(esc);
                break;
              case 'b':
                if (out)
                    out->push_back('\b');
                break;
              case 'f':
                if (out)
                    out->push_back('\f');
                break;
              case 'n':
                if (out)
                    out->push_back('\n');
                break;
              case 'r':
                if (out)
                    out->push_back('\r');
                break;
              case 't':
                if (out)
                    out->push_back('\t');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                for (int i = 0; i < 4; ++i)
                    if (!std::isxdigit(static_cast<unsigned char>(
                            text_[pos_ + i])))
                        return false;
                // Validation keeps the raw escape; the flat-object
                // parser only needs ASCII keys, which never use \u.
                if (out)
                    out->append(text_.substr(pos_ - 2, 6));
                pos_ += 4;
                break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated
    }

    bool
    number(double *out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        if (out) {
            const std::string t(text_.substr(start, pos_ - start));
            *out = std::strtod(t.c_str(), nullptr);
        }
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    digits()
    {
        std::size_t n = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            ++n;
        }
        return n > 0;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    value()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string(nullptr);
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number(nullptr);
        }
    }

    bool
    object()
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            if (!string(nullptr))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            if (!value())
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    array()
    {
        if (!consume('['))
            return false;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
jsonValidate(std::string_view text)
{
    return JsonScanner(text).validate();
}

std::optional<std::map<std::string, double>>
jsonParseFlatNumberObject(std::string_view text)
{
    JsonScanner s(text);
    std::map<std::string, double> out;
    s.skipWs();
    if (!s.consume('{'))
        return std::nullopt;
    s.skipWs();
    if (s.consume('}'))
        return s.atEnd() ? std::optional(out) : std::nullopt;
    while (true) {
        s.skipWs();
        std::string key;
        if (!s.string(&key))
            return std::nullopt;
        s.skipWs();
        if (!s.consume(':'))
            return std::nullopt;
        s.skipWs();
        double v = 0.0;
        if (!s.number(&v))
            return std::nullopt;
        if (!out.emplace(std::move(key), v).second)
            return std::nullopt; // duplicate key
        s.skipWs();
        if (s.consume('}'))
            return s.atEnd() ? std::optional(out) : std::nullopt;
        if (!s.consume(','))
            return std::nullopt;
    }
}

} // namespace manna
