#include "net.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::net
{

namespace
{

/** accept() inherits no CLOEXEC by default; every service fd gets it
 * so spawned bench subprocesses never hold a daemon socket open. */
void
setCloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

} // namespace

std::string
NetAddress::describe() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return strformat("tcp:%s:%u", host.c_str(),
                     static_cast<unsigned>(port));
}

NetAddress
parseAddress(const std::string &text)
{
    NetAddress out;
    std::string body = text;
    if (text.rfind("unix:", 0) == 0) {
        body = text.substr(5);
        out.kind = NetAddress::Kind::Unix;
    } else if (text.rfind("tcp:", 0) == 0) {
        body = text.substr(4);
        out.kind = NetAddress::Kind::Tcp;
    } else if (text.find('/') != std::string::npos) {
        out.kind = NetAddress::Kind::Unix; // bare path shorthand
    } else {
        throw ConfigError(strformat(
            "server address '%s' must be unix:PATH or tcp:HOST:PORT",
            text.c_str()));
    }

    if (out.kind == NetAddress::Kind::Unix) {
        if (body.empty())
            throw ConfigError("unix: server address has no path");
        // sun_path is a fixed buffer; reject instead of truncating.
        sockaddr_un probe{};
        if (body.size() >= sizeof(probe.sun_path))
            throw ConfigError(strformat(
                "unix socket path '%s' exceeds %zu bytes",
                body.c_str(), sizeof(probe.sun_path) - 1));
        out.path = body;
        return out;
    }

    const auto colon = body.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= body.size())
        throw ConfigError(strformat(
            "tcp server address '%s' must be tcp:HOST:PORT",
            text.c_str()));
    const auto port = parseInt(body.substr(colon + 1));
    if (!port || *port <= 0 || *port > 65535)
        throw ConfigError(strformat(
            "tcp server address '%s' has an invalid port",
            text.c_str()));
    out.host = body.substr(0, colon);
    out.port = static_cast<std::uint16_t>(*port);
    return out;
}

void
ScopedFd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

ScopedFd
listenOn(const NetAddress &addr)
{
    if (addr.kind == NetAddress::Kind::Unix) {
        ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid())
            throw IoError(strformat("socket(AF_UNIX): %s",
                                    std::strerror(errno)));
        setCloexec(fd.get());
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        ::unlink(addr.path.c_str()); // stale socket from a dead daemon
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            throw IoError(strformat("bind(%s): %s",
                                    addr.path.c_str(),
                                    std::strerror(errno)));
        if (::listen(fd.get(), 64) != 0)
            throw IoError(strformat("listen(%s): %s",
                                    addr.path.c_str(),
                                    std::strerror(errno)));
        return fd;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    const std::string portText = strformat("%u",
                                           static_cast<unsigned>(
                                               addr.port));
    const int gai = ::getaddrinfo(
        addr.host.empty() ? nullptr : addr.host.c_str(),
        portText.c_str(), &hints, &res);
    if (gai != 0)
        throw IoError(strformat("getaddrinfo(%s): %s",
                                addr.describe().c_str(),
                                ::gai_strerror(gai)));
    std::string lastError = "no usable address";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        ScopedFd fd(::socket(ai->ai_family, ai->ai_socktype,
                             ai->ai_protocol));
        if (!fd.valid()) {
            lastError = std::strerror(errno);
            continue;
        }
        setCloexec(fd.get());
        const int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd.get(), 64) != 0) {
            lastError = std::strerror(errno);
            continue;
        }
        ::freeaddrinfo(res);
        return fd;
    }
    ::freeaddrinfo(res);
    throw IoError(strformat("cannot listen on %s: %s",
                            addr.describe().c_str(),
                            lastError.c_str()));
}

int
acceptOn(int listenFd, int timeoutMs)
{
    pollfd pfd{listenFd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeoutMs);
    if (rc <= 0)
        return -1; // timeout or EINTR: the caller's loop re-polls
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0)
        return -1;
    setCloexec(fd);
    return fd;
}

int
connectTo(const NetAddress &addr)
{
    if (addr.kind == NetAddress::Kind::Unix) {
        ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid())
            return -1;
        setCloexec(fd.get());
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0)
            return -1;
        return fd.release();
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portText = strformat("%u",
                                           static_cast<unsigned>(
                                               addr.port));
    if (::getaddrinfo(addr.host.c_str(), portText.c_str(), &hints,
                      &res) != 0)
        return -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        ScopedFd fd(::socket(ai->ai_family, ai->ai_socktype,
                             ai->ai_protocol));
        if (!fd.valid())
            continue;
        setCloexec(fd.get());
        if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
            ::freeaddrinfo(res);
            return fd.release();
        }
    }
    ::freeaddrinfo(res);
    return -1;
}

bool
sendAll(int fd, const void *buf, std::size_t n)
{
    const char *p = static_cast<const char *>(buf);
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (w == 0)
            return false;
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

std::size_t
recvAll(int fd, void *buf, std::size_t n)
{
    char *p = static_cast<char *>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return got;
        }
        if (r == 0)
            return got; // EOF: 0 if clean, short if torn
        got += static_cast<std::size_t>(r);
    }
    return got;
}

} // namespace manna::net
