/**
 * @file
 * Minimal process-spawning utilities for the distributed sweep
 * harness (see docs/DISTRIBUTED.md). A shard coordinator fork/execs
 * worker copies of its own binary with stdout/stderr redirected to
 * per-worker log files, polls them without blocking so it can enforce
 * wall-clock budgets, and reaps their exit status to tell a clean
 * exit from a crash.
 *
 * POSIX only (fork/execvp/waitpid), matching the repo's existing use
 * of fsync(); no shell is involved unless the caller explicitly
 * spawns one (the multi-machine spawn template does).
 */

#ifndef MANNA_COMMON_SUBPROCESS_HH
#define MANNA_COMMON_SUBPROCESS_HH

#include <string>
#include <vector>

#include <sys/types.h>

namespace manna
{

/** Resolution of a child process, from waitpid(). */
struct ProcessStatus
{
    bool running = false;  ///< still alive (poll only)
    bool exited = false;   ///< terminated via exit()
    int exitCode = 0;      ///< meaningful iff exited
    bool signaled = false; ///< terminated by a signal (crash/kill)
    int signal = 0;        ///< meaningful iff signaled

    /** A process that exited with an expected code; anything else
     * (signal death, abnormal exit) counts as a crash. */
    bool
    cleanExit(int maxOkCode = 1) const
    {
        return exited && exitCode >= 0 && exitCode <= maxOkCode;
    }
};

/**
 * fork/exec @p argv (argv[0] is the binary; PATH is searched) with
 * stdout/stderr appended to the given files ("" leaves the stream
 * shared with the parent). Returns the child pid, or -1 with a
 * warn() on failure — including exec failure (bad binary path),
 * which is detected through a CLOEXEC errno pipe and reaped here so
 * the caller never polls a corpse. All parent-side pipe fds are
 * closed on every return path (leak-regression-tested). The child
 * inherits the parent's environment.
 */
pid_t spawnProcess(const std::vector<std::string> &argv,
                   const std::string &stdoutPath = "",
                   const std::string &stderrPath = "");

/** Non-blocking status poll; running=true while the child lives.
 * Each child must be polled/waited exactly until it is reaped. */
ProcessStatus pollProcess(pid_t pid);

/** Blocking wait for a child to terminate. */
ProcessStatus waitProcess(pid_t pid);

/** Send @p sig (default SIGKILL) to a child; no-op on pid <= 0. */
void killProcess(pid_t pid, int sig = 0 /* 0 = SIGKILL */);

/** Quote a string for safe interpolation into a POSIX shell command
 * (single-quote wrapping with embedded-quote escaping). */
std::string shellQuote(const std::string &s);

/** shellQuote() and join @p argv with spaces: the {cmd} substitution
 * of the multi-machine spawn template. */
std::string shellJoin(const std::vector<std::string> &argv);

} // namespace manna

#endif // MANNA_COMMON_SUBPROCESS_HH
