/**
 * @file
 * Harness-level distributed tracing: a low-overhead span/event log
 * every process of a sweep (plain run, shard coordinator, shard
 * worker) can write, and a parser for merging the per-process files
 * into one clock-aligned timeline (harness/observe.hh renders the
 * merge as a Chrome trace).
 *
 * Model: one process-wide EventLog (like the fault-injection
 * registry), armed by the `events=FILE` knob (MANNA_EVENTS fallback)
 * through events::configureFromConfig(). When disarmed — the default
 * — every emission site is a single relaxed atomic load. When armed,
 * events buffer in memory (bounded by `events_limit=`, default
 * 131072; overflow is counted, never blocking) and flush as JSONL
 * (`manna-events-v1`, docs/FORMATS.md) in small batches, so a killed
 * process loses at most the last batch and a torn final line is
 * skippable by the parser — the same crash-safety posture as the
 * sweep journal.
 *
 * Clocks: every event carries a monotonic timestamp relative to the
 * log's open; the header pairs that monotonic epoch with a wall-clock
 * sample, plus — for shard workers — the coordinator's wall clock at
 * spawn time (injected as `event_sync=`, the spawn-time offset
 * handshake). The merger aligns files on the wall clock, clamped so a
 * worker whose clock lags never appears to start before it was
 * spawned. See docs/OBSERVABILITY.md ("Harness span and event
 * catalog") for the span catalog and the clock-sync model.
 *
 * Event names come from a closed registry (kEventNames in
 * event_log.cc, linted two-way against the docs catalog by
 * scripts/check_docs.sh); emitting an unregistered name panics, so
 * call sites cannot drift from the catalog.
 */

#ifndef MANNA_COMMON_EVENT_LOG_HH
#define MANNA_COMMON_EVENT_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace manna
{
class Config;
}

namespace manna::events
{

/** Count of registered span/event names (see kEventNames). */
std::size_t eventNameCount();

/** True when @p name is in the registry. */
bool isRegisteredEventName(std::string_view name);

namespace detail
{
extern std::atomic<bool> gEnabled;
}

/** Fast gate for emission sites: one relaxed load when tracing is
 * off, so instrumented hot paths cost nothing in normal runs. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/**
 * The process-wide event log. All members are thread-safe; emission
 * is a no-op until open() succeeds.
 */
class EventLog
{
  public:
    static EventLog &instance();

    /**
     * Start logging to @p path (truncating) under process role
     * @p role ("main", "coord", "shard K"). @p syncUs is the
     * coordinator's wall clock (µs since the Unix epoch) at spawn
     * time, 0 when unknown — it rides into the header for the
     * merger's clock alignment. Returns false (with a warning) when
     * the file cannot be created or a log is already open.
     */
    bool open(const std::string &path, const std::string &role,
              std::uint64_t syncUs = 0,
              std::size_t maxEvents = kDefaultLimit);

    /** Flush, fsync, and close; further emissions are no-ops. Safe to
     * call when not open. */
    void close();

    /** Flush buffered events to the file (no fsync). */
    void flush();

    /** Path of the open log ("" when closed). */
    std::string path();

    /**
     * Begin a span. Returns the span id to pass to endSpan(), 0 when
     * logging is off (endSpan ignores id 0). @p name must be
     * registered; @p detail is free-form "k=v" text attached to the
     * begin event.
     */
    std::uint64_t beginSpan(const char *name,
                            const std::string &detail = "");

    /** End span @p id (from beginSpan). */
    void endSpan(const char *name, std::uint64_t id,
                 const std::string &detail = "");

    /** A zero-duration instant event. */
    void instant(const char *name, const std::string &detail = "");

    /** Events dropped past the buffer bound so far. */
    std::uint64_t dropped();

    /**
     * Register a sibling event file for the merged harness trace
     * (the coordinator adds each worker's injected file here; the
     * open log's own path is always first). Paths are deduplicated.
     */
    void registerMergeFile(const std::string &path);

    /** The merge list: own path (if a log is or was open) followed by
     * registered worker files, in registration order. */
    std::vector<std::string> mergeFiles();

    static constexpr std::size_t kDefaultLimit = 131072;

  private:
    EventLog() = default;
    ~EventLog();

    struct Record
    {
        const char *name;
        char phase; ///< 'B' begin, 'E' end, 'i' instant
        std::uint64_t t;
        std::uint32_t tid;
        std::uint64_t id;
        std::string detail;
    };

    void emit(const char *name, char phase, std::uint64_t id,
              const std::string &detail);
    std::uint32_t tidLocked();
    void flushLocked();

    std::mutex mu_;
    std::FILE *file_ = nullptr;
    std::string path_;
    std::string role_;
    std::uint64_t monoEpochNs_ = 0;
    std::size_t limit_ = kDefaultLimit;
    std::uint64_t written_ = 0;
    std::uint64_t dropped_ = 0;
    std::atomic<std::uint64_t> nextSpanId_{1};
    std::map<std::thread::id, std::uint32_t> tids_;
    std::vector<Record> buffer_;
    std::vector<std::string> mergeFiles_;
};

/** RAII span against the process-wide log: begins on construction,
 * ends on destruction (or at an explicit end()). Free when logging
 * is off. */
class Span
{
  public:
    explicit Span(const char *name, const std::string &detail = "")
        : name_(name)
    {
        if (enabled())
            id_ = EventLog::instance().beginSpan(name, detail);
    }

    ~Span() { end(); }

    /** End early, optionally attaching outcome detail to the end
     * event ("ok=0", "cause=timeout", ...). */
    void
    end(const std::string &detail = "")
    {
        if (id_ == 0)
            return;
        EventLog::instance().endSpan(name_, id_, detail);
        id_ = 0;
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    std::uint64_t id_ = 0;
};

/** Emit an instant event iff logging is armed (sugar around the
 * singleton for call sites). */
inline void
instant(const char *name, const std::string &detail = "")
{
    if (enabled())
        EventLog::instance().instant(name, detail);
}

/** Wall clock in µs since the Unix epoch (CLOCK_REALTIME) — the
 * cross-process alignment axis of the clock-sync model. */
std::uint64_t wallClockMicros();

/**
 * Parse events= / events_limit= (MANNA_EVENTS / MANNA_EVENTS_LIMIT)
 * and the coordinator-injected event_sync=, and open the process-wide
 * log under @p role when a path is configured. Process-wide side
 * effect, like fault::configureFromConfig(). No-op when no path is
 * given.
 */
void configureFromConfig(const Config &cfg, const std::string &role);

// ---------------------------------------------------------------------
// Reading manna-events-v1 files back (the merge path)
// ---------------------------------------------------------------------

/** One event parsed back from a manna-events-v1 file. The detail
 * string is kept JSON-escaped exactly as written (it re-embeds into
 * the merged trace without a decode/encode round trip). */
struct ParsedEvent
{
    std::string name;
    char phase = 'i';
    std::uint64_t t = 0; ///< ns since the file's monotonic epoch
    std::uint32_t tid = 0;
    std::uint64_t id = 0;
    std::string detail; ///< still JSON-escaped; "" when absent
};

/** One parsed manna-events-v1 file. */
struct ParsedEventFile
{
    bool ok = false;    ///< header parsed and schema matched
    std::string role;
    long pid = 0;
    std::uint64_t wallUs = 0; ///< wall clock at the monotonic epoch
    std::uint64_t monoNs = 0; ///< monotonic clock at the epoch
    std::uint64_t syncUs = 0; ///< coordinator wall clock at spawn (0 = none)
    std::uint64_t dropped = 0;
    std::size_t skippedLines = 0; ///< torn/foreign lines ignored
    std::vector<ParsedEvent> events;

    /** Wall-clock µs of the monotonic epoch after the spawn-time
     * clamp: a worker cannot have started before the coordinator
     * spawned it, so a lagging worker clock is pulled forward. */
    std::uint64_t
    alignedWallUs() const
    {
        return wallUs > syncUs ? wallUs : syncUs;
    }
};

/** Load a manna-events-v1 file. Torn or foreign lines are counted
 * into skippedLines and ignored (crash-tolerant, like the journal
 * loader); a missing file or bad header returns ok == false. */
ParsedEventFile parseEventFile(const std::string &path);

} // namespace manna::events

#endif // MANNA_COMMON_EVENT_LOG_HH
