/**
 * @file
 * A minimal stable (process-independent) hash for fingerprinting
 * configuration structs. FNV-1a over a fixed field serialization:
 * the resulting value is deterministic across runs and platforms
 * with the same integer widths, which makes it usable as a compile
 * cache key and printable in diagnostics.
 */

#ifndef MANNA_COMMON_HASH_HH
#define MANNA_COMMON_HASH_HH

#include <cstdint>
#include <cstring>

namespace manna
{

/** Incremental FNV-1a (64-bit). Feed fields in a fixed order. */
class Fnv1a
{
  public:
    Fnv1a &bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ull;
        }
        return *this;
    }

    Fnv1a &u64(std::uint64_t v)
    {
        return bytes(&v, sizeof(v));
    }

    Fnv1a &f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        return u64(bits);
    }

    Fnv1a &boolean(bool v) { return u64(v ? 1 : 0); }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace manna

#endif // MANNA_COMMON_HASH_HH
