#include "shutdown.hh"

#include <atomic>
#include <mutex>

#include <signal.h>

namespace manna
{

namespace
{

// The whole handler state is one lock-free atomic int: 0 = no
// shutdown, else the signal number. Everything the handler touches
// must be async-signal-safe.
std::atomic<int> gShutdownSignal{0};

extern "C" void
onShutdownSignal(int sig)
{
    gShutdownSignal.store(sig, std::memory_order_relaxed);
}

} // namespace

void
installShutdownHandlers()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction sa;
        sa.sa_handler = onShutdownSignal;
        ::sigemptyset(&sa.sa_mask);
        // SA_RESTART: the harness polls the flag from its scanner
        // threads; nothing depends on EINTR, and restarting keeps
        // unrelated blocking calls (stdio, waitpid) undisturbed.
        sa.sa_flags = SA_RESTART;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
    });
}

bool
shutdownRequested()
{
    return gShutdownSignal.load(std::memory_order_relaxed) != 0;
}

int
shutdownSignal()
{
    return gShutdownSignal.load(std::memory_order_relaxed);
}

void
requestShutdown(int sig)
{
    gShutdownSignal.store(sig, std::memory_order_relaxed);
}

void
resetShutdownForTest()
{
    gShutdownSignal.store(0, std::memory_order_relaxed);
}

} // namespace manna
