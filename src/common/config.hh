/**
 * @file
 * A tiny typed key/value configuration store. Experiment binaries use
 * it to parse "key=value" command-line overrides so sweeps can be
 * scripted without recompiling.
 */

#ifndef MANNA_COMMON_CONFIG_HH
#define MANNA_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace manna
{

/**
 * String-backed configuration with typed accessors.
 *
 * Lookups that fail to parse the stored text as the requested type
 * call fatal(), since a malformed value is a user error.
 */
class Config
{
  public:
    Config() = default;

    /** Parse "key=value" tokens (e.g. from argv). Unknown-format
     * tokens trigger fatal(). */
    static Config fromArgs(int argc, const char *const *argv,
                           int firstArg = 1);

    /** Set or overwrite a key. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /** Typed getters with defaults. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** All keys in sorted order (for help/diagnostics). */
    std::vector<std::string> keys() const;

    /** Every key=value pair, sorted by key. The shard coordinator
     * re-serializes these (minus its own control knobs) into worker
     * command lines — see src/harness/shard.hh. */
    const std::map<std::string, std::string> &entries() const
    {
        return values_;
    }

    /** argv[0] as captured by fromArgs() ("" when the Config was
     * built programmatically). The shard coordinator re-execs it to
     * spawn workers of the same binary. */
    const std::string &exePath() const { return exePath_; }

  private:
    std::map<std::string, std::string> values_;
    std::string exePath_;
};

} // namespace manna

#endif // MANNA_COMMON_CONFIG_HH
