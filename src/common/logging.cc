#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace manna
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

/** One-line triage hint printed just before an abort/exit. */
void
reportSanitizeHint()
{
    std::fprintf(stderr,
                 "hint: rerun with a -DMANNA_SANITIZE=address (or "
                 "thread/undefined) build for an instrumented "
                 "report\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panicAssertFail(const char *cond, const char *file, int line,
                const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ", cond,
                 file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    reportSanitizeHint();
    std::abort();
}

void
panicAt(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: at %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    reportSanitizeHint();
    std::abort();
}

void
fatalAt(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: at %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    reportSanitizeHint();
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Normal)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace manna
