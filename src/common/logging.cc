#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <time.h>

#include "common/event_log.hh"

namespace manna
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;
std::string globalRole;

/** "2026-08-08T12:34:56.789Z" — UTC, millisecond precision. */
std::string
isoTimestamp()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_REALTIME, &ts);
    struct tm tm;
    ::gmtime_r(&ts.tv_sec, &tm);
    char buf[40];
    const std::size_t n =
        ::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
    std::snprintf(buf + n, sizeof(buf) - n, ".%03ldZ",
                  ts.tv_nsec / 1000000L);
    return buf;
}

void
vreport(const char *tag, const char *fmt, va_list args)
{
    // Format the message once: it goes to stderr and — for
    // warn/inform while a trace is armed — into the event log.
    va_list copy;
    va_copy(copy, args);
    const int need = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string msg;
    if (need > 0) {
        std::vector<char> buf(static_cast<std::size_t>(need) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        msg.assign(buf.data(), static_cast<std::size_t>(need));
    }
    if (globalRole.empty()) {
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    } else {
        // Multi-process runs: a timestamp + role prefix keeps the
        // coordinator's and workers' interleaved stderr attributable.
        std::fprintf(stderr, "%s [%s] %s: %s\n",
                     isoTimestamp().c_str(), globalRole.c_str(), tag,
                     msg.c_str());
    }
    // Mirror warnings and infos into the harness trace so a merged
    // timeline is self-explaining. Guard against recursion: event-log
    // internals may warn, and that warning must not re-enter.
    if (events::enabled()) {
        static thread_local bool routing = false;
        if (!routing &&
            (tag[0] == 'w' || (tag[0] == 'i' && tag[1] == 'n'))) {
            routing = true;
            events::instant(tag[0] == 'w' ? "log.warn" : "log.info",
                            msg);
            routing = false;
        }
    }
}

/** One-line triage hint printed just before an abort/exit. */
void
reportSanitizeHint()
{
    std::fprintf(stderr,
                 "hint: rerun with a -DMANNA_SANITIZE=address (or "
                 "thread/undefined) build for an instrumented "
                 "report\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogRole(const std::string &role)
{
    globalRole = role;
}

const std::string &
logRole()
{
    return globalRole;
}

void
panicAssertFail(const char *cond, const char *file, int line,
                const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ", cond,
                 file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    reportSanitizeHint();
    std::abort();
}

void
panicAt(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: at %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    reportSanitizeHint();
    std::abort();
}

void
fatalAt(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: at %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    reportSanitizeHint();
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Normal)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace manna
