#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"
#include "strutil.hh"

namespace manna
{

void
StatGroup::inc(const std::string &key, double amount)
{
    values_[key] += amount;
}

void
StatGroup::set(const std::string &key, double value)
{
    values_[key] = value;
}

double
StatGroup::get(const std::string &key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.values_)
        values_[k] += v;
}

void
StatGroup::clear()
{
    for (auto &[k, v] : values_)
        v = 0.0;
}

std::string
StatGroup::render() const
{
    std::string out;
    for (const auto &[k, v] : values_) {
        std::string prefix = name_.empty() ? k : name_ + "." + k;
        out += strformat("%-48s %.6g\n", prefix.c_str(), v);
    }
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logsum = 0.0;
    for (double v : values) {
        MANNA_ASSERT(v > 0.0, "geomean needs positive values, got %g", v);
        logsum += std::log(v);
    }
    return std::exp(logsum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets + 2, 0.0)
{
    MANNA_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::add(double v, double weight)
{
    count_ += weight;
    sum_ += v * weight;
    if (!any_ || v < minSeen_)
        minSeen_ = v;
    if (!any_ || v > maxSeen_)
        maxSeen_ = v;
    any_ = true;

    const std::size_t inner = buckets_.size() - 2;
    if (v < lo_) {
        buckets_.front() += weight;
    } else if (v >= hi_) {
        buckets_.back() += weight;
    } else {
        const double frac = (v - lo_) / (hi_ - lo_);
        std::size_t idx =
            static_cast<std::size_t>(frac * static_cast<double>(inner));
        if (idx >= inner)
            idx = inner - 1;
        buckets_[idx + 1] += weight;
    }
}

std::string
Histogram::render(const std::string &label) const
{
    std::string out = strformat(
        "%s: n=%.0f mean=%.4g min=%.4g max=%.4g\n", label.c_str(), count_,
        mean(), minSeen_, maxSeen_);
    const std::size_t inner = buckets_.size() - 2;
    const double width = (hi_ - lo_) / static_cast<double>(inner);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0.0)
            continue;
        std::string range;
        if (i == 0)
            range = strformat("(-inf, %.4g)", lo_);
        else if (i == buckets_.size() - 1)
            range = strformat("[%.4g, +inf)", hi_);
        else
            range = strformat("[%.4g, %.4g)",
                              lo_ + width * static_cast<double>(i - 1),
                              lo_ + width * static_cast<double>(i));
        out += strformat("  %-24s %.0f\n", range.c_str(), buckets_[i]);
    }
    return out;
}

} // namespace manna
