#include "fault.hh"

#include <cstdlib>

#include "common/config.hh"
#include "common/event_log.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::fault
{

namespace
{

/** Registry of site names, indexed by Site. The docs lint
 * (scripts/check_docs.sh) extracts this array and diffs it two-way
 * against the fault-site catalog in docs/ROBUSTNESS.md. */
const char *const kSiteNames[] = {
    "journal.append.short",
    "journal.append.torn",
    "journal.append.eio",
    "journal.append.enospc",
    "journal.fsync",
    "journal.close",
    "journal.read.corrupt",
    "proc.spawn",
    "worker.stall",
    "worker.silent_exit",
    "worker.crash",
    "worker.exit.delay",
    "shard.merge.drop",
    "server.accept",
    "server.frame.torn",
    "pool.worker.crash",
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) == kNumSites,
              "site registry out of sync with the Site enum");

enum class Mode
{
    Off,
    Once,  ///< fire exactly on hit N
    Every, ///< fire on every Nth hit
    Prob,  ///< fire with probability p per hit (seeded hash)
};

struct SiteState
{
    Mode mode = Mode::Off;
    std::uint64_t n = 0;
    double p = 0.0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
};

SiteState gSites[kNumSites];
std::uint64_t gSeed = 1;

/** Deterministic per-hit uniform draw in [0,1): FNV over the seed,
 * site index, hit index, and scope, finalized splitmix-style so low
 * bits are well mixed. */
double
hitUniform(Site site, std::uint64_t hit, std::uint64_t scope)
{
    Fnv1a h;
    h.u64(gSeed);
    h.u64(static_cast<std::uint64_t>(site));
    h.u64(hit);
    h.u64(scope);
    std::uint64_t x = h.value();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<double>(x >> 11) * 0x1p-53;
}

bool
evaluate(SiteState &s, Site site, std::uint64_t hit,
         std::uint64_t scope)
{
    switch (s.mode) {
      case Mode::Off:
        return false;
      case Mode::Once:
        return hit == s.n;
      case Mode::Every:
        return s.n > 0 && hit % s.n == 0;
      case Mode::Prob:
        return hitUniform(site, hit, scope) < s.p;
    }
    return false;
}

bool
parseOneSpec(const std::string &entry, SiteState parsed[kNumSites],
             std::string *error)
{
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
        if (error)
            *error = strformat("fault spec '%s' lacks ':' "
                               "(want site:once@N|every@N|prob@P)",
                               entry.c_str());
        return false;
    }
    const std::string name = trim(entry.substr(0, colon));
    const std::string spec = trim(entry.substr(colon + 1));
    const auto site = siteByName(name);
    if (!site) {
        if (error)
            *error = strformat("unknown fault site '%s'",
                               name.c_str());
        return false;
    }
    const auto at = spec.find('@');
    const std::string verb =
        at == std::string::npos ? spec : spec.substr(0, at);
    const std::string arg =
        at == std::string::npos ? "" : spec.substr(at + 1);
    SiteState &s = parsed[static_cast<unsigned>(*site)];
    if (verb == "once" || verb == "every") {
        const auto n = parseInt(arg);
        if (!n || *n <= 0) {
            if (error)
                *error = strformat("fault spec '%s' needs a positive "
                                   "count after '@'",
                                   entry.c_str());
            return false;
        }
        s.mode = verb == "once" ? Mode::Once : Mode::Every;
        s.n = static_cast<std::uint64_t>(*n);
        return true;
    }
    if (verb == "prob") {
        char *end = nullptr;
        const double p =
            arg.empty() ? -1.0 : std::strtod(arg.c_str(), &end);
        if (arg.empty() || *end != '\0' || p < 0.0 || p > 1.0) {
            if (error)
                *error = strformat("fault spec '%s' needs a "
                                   "probability in [0,1] after '@'",
                                   entry.c_str());
            return false;
        }
        s.mode = Mode::Prob;
        s.p = p;
        return true;
    }
    if (error)
        *error = strformat("unknown fault verb '%s' in '%s' "
                           "(want once@N, every@N, or prob@P)",
                           verb.c_str(), entry.c_str());
    return false;
}

} // namespace

namespace detail
{
std::atomic<bool> gAnyArmed{false};
}

const char *
siteName(Site site)
{
    const auto i = static_cast<unsigned>(site);
    MANNA_ASSERT(i < kNumSites, "bad fault site");
    return kSiteNames[i];
}

std::optional<Site>
siteByName(std::string_view name)
{
    for (std::size_t i = 0; i < kNumSites; ++i)
        if (name == kSiteNames[i])
            return static_cast<Site>(i);
    return std::nullopt;
}

bool
shouldFire(Site site)
{
    SiteState &s = gSites[static_cast<unsigned>(site)];
    if (s.mode == Mode::Off)
        return false;
    const std::uint64_t hit =
        s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!evaluate(s, site, hit, 0))
        return false;
    s.fires.fetch_add(1, std::memory_order_relaxed);
    // Chaos runs become self-explaining: every injected fault is an
    // instant on the harness timeline (docs/OBSERVABILITY.md).
    if (events::enabled())
        events::instant("fault.injected",
                        strformat("site=%s hit=%llu", siteName(site),
                                  static_cast<unsigned long long>(
                                      hit)));
    return true;
}

bool
shouldFireAt(Site site, std::uint64_t hit, std::uint64_t scope)
{
    SiteState &s = gSites[static_cast<unsigned>(site)];
    if (s.mode == Mode::Off)
        return false;
    s.hits.fetch_add(1, std::memory_order_relaxed);
    if (!evaluate(s, site, hit, scope))
        return false;
    s.fires.fetch_add(1, std::memory_order_relaxed);
    if (events::enabled())
        events::instant(
            "fault.injected",
            strformat("site=%s hit=%llu scope=%llu", siteName(site),
                      static_cast<unsigned long long>(hit),
                      static_cast<unsigned long long>(scope)));
    return true;
}

bool
tryConfigure(const std::string &spec, std::uint64_t seed,
             std::string *error)
{
    SiteState parsed[kNumSites];
    for (const std::string &part : split(spec, ',')) {
        const std::string entry = trim(part);
        if (entry.empty())
            continue;
        if (!parseOneSpec(entry, parsed, error))
            return false;
    }
    bool any = false;
    for (std::size_t i = 0; i < kNumSites; ++i) {
        gSites[i].mode = parsed[i].mode;
        gSites[i].n = parsed[i].n;
        gSites[i].p = parsed[i].p;
        gSites[i].hits.store(0, std::memory_order_relaxed);
        gSites[i].fires.store(0, std::memory_order_relaxed);
        any = any || parsed[i].mode != Mode::Off;
    }
    gSeed = seed;
    detail::gAnyArmed.store(any, std::memory_order_relaxed);
    return true;
}

void
configure(const std::string &spec, std::uint64_t seed)
{
    std::string error;
    if (!tryConfigure(spec, seed, &error))
        fatal("faults=: %s", error.c_str());
}

void
configureFromConfig(const Config &cfg)
{
    const char *envSpec = std::getenv("MANNA_FAULTS");
    const std::string spec =
        cfg.getString("faults", envSpec ? envSpec : "");
    std::int64_t seedDefault = 1;
    if (const char *envSeed = std::getenv("MANNA_FAULT_SEED")) {
        if (const auto v = parseInt(envSeed))
            seedDefault = *v;
        else
            warn("ignoring invalid MANNA_FAULT_SEED='%s'", envSeed);
    }
    const std::uint64_t seed = static_cast<std::uint64_t>(
        cfg.getInt("fault_seed", seedDefault));
    if (spec.empty()) {
        // Nothing requested: leave any programmatic arming (tests)
        // alone rather than disarming it.
        gSeed = seed;
        return;
    }
    configure(spec, seed);
    debugLog("fault injection armed: %s", describeArmed().c_str());
}

void
reset()
{
    tryConfigure("", 1, nullptr);
}

std::uint64_t
hitCount(Site site)
{
    return gSites[static_cast<unsigned>(site)].hits.load(
        std::memory_order_relaxed);
}

std::uint64_t
fireCount(Site site)
{
    return gSites[static_cast<unsigned>(site)].fires.load(
        std::memory_order_relaxed);
}

std::string
describeArmed()
{
    std::string out;
    for (std::size_t i = 0; i < kNumSites; ++i) {
        const SiteState &s = gSites[i];
        if (s.mode == Mode::Off)
            continue;
        if (!out.empty())
            out += ",";
        switch (s.mode) {
          case Mode::Once:
            out += strformat("%s:once@%llu", kSiteNames[i],
                             static_cast<unsigned long long>(s.n));
            break;
          case Mode::Every:
            out += strformat("%s:every@%llu", kSiteNames[i],
                             static_cast<unsigned long long>(s.n));
            break;
          case Mode::Prob:
            out += strformat("%s:prob@%g", kSiteNames[i], s.p);
            break;
          case Mode::Off:
            break;
        }
    }
    return out.empty() ? "(none)" : out;
}

} // namespace manna::fault
