/**
 * @file
 * Deterministic fault injection for the robustness machinery.
 *
 * A *site* is a named point in the I/O or process-control code where
 * a failure can be provoked on purpose: journal writes, fsync, reads,
 * subprocess spawn, worker liveness, shard merge. Sites are compiled
 * in unconditionally but cost one relaxed atomic load when nothing is
 * armed (anyArmed() is the fast gate every site checks first).
 *
 * Arming is driven entirely by configuration — `faults=site:spec,...`
 * on any sweep bench's command line, or the MANNA_FAULTS environment
 * variable — so every failure scenario is replayable from the command
 * line that produced it. Specs:
 *
 *   once@N   fire exactly on the Nth hit of the site (1-based)
 *   every@N  fire on every Nth hit
 *   prob@P   fire with probability P per hit, derived from a
 *            deterministic hash of (seed, site, hit index), so the
 *            same seed replays the same failures (`fault_seed=` /
 *            MANNA_FAULT_SEED, default 1)
 *
 * Hit counters are per process. Sites in shard *workers* therefore
 * use shouldFireAt() with a cross-process hit index (the re-dispatch
 * round), so "kill the worker once" means round 0 only, not every
 * re-dispatched worker forever. See docs/ROBUSTNESS.md for the site
 * catalog (linted two-way against this registry by check_docs.sh).
 */

#ifndef MANNA_COMMON_FAULT_HH
#define MANNA_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace manna
{
class Config;
}

namespace manna::fault
{

/** Every injection site, in registry order (kSiteNames in fault.cc
 * mirrors this enum and is the source of truth for the docs lint). */
enum class Site : unsigned
{
    JournalAppendShort, ///< partial fwrite, then surfaced as IoError
    JournalAppendTorn,  ///< silently write a truncated record
    JournalAppendEio,   ///< append fails outright with EIO
    JournalAppendEnospc,///< append fails with ENOSPC (disk full)
    JournalFsync,       ///< fsync of the journal fails
    JournalClose,       ///< final flush at destruction fails
    JournalReadCorrupt, ///< flip one byte of a record being loaded
    ProcSpawn,          ///< spawnProcess() fails (fork/exec error)
    WorkerStall,        ///< shard worker hangs without heartbeating
    WorkerSilentExit,   ///< worker exits 0 without doing any work
    WorkerCrash,        ///< worker dies hard (_Exit(137), like OOM)
    WorkerExitDelay,    ///< worker finishes, then lingers ~2s alive
    ShardMergeDrop,     ///< coordinator loses a worker's journal
    ServerAccept,       ///< daemon drops a freshly accepted connection
    ServerFrameTorn,    ///< daemon tears a response frame mid-write
    PoolWorkerCrash,    ///< pool worker dies mid-job (job is requeued)
};

inline constexpr std::size_t kNumSites = 16;

namespace detail
{
extern std::atomic<bool> gAnyArmed;
}

/** Fast gate: true iff any site has an armed spec. Sites check this
 * before paying for shouldFire()'s counter bump. */
inline bool
anyArmed()
{
    return detail::gAnyArmed.load(std::memory_order_relaxed);
}

/** Canonical dotted name of @p site (e.g. "journal.append.torn"). */
const char *siteName(Site site);

/** Reverse lookup; nullopt for unknown names. */
std::optional<Site> siteByName(std::string_view name);

/** Count a hit at @p site and report whether its armed spec fires.
 * Thread-safe; the per-process hit counter increments every call. */
bool shouldFire(Site site);

/**
 * Like shouldFire() but with a caller-supplied hit index instead of
 * the per-process counter — for sites whose "Nth hit" must be
 * meaningful across processes (shard workers pass their re-dispatch
 * round + 1, so once@1 means "round 0 only"). @p scope is mixed into
 * prob@ hashing so distinct workers of one round draw independently.
 */
bool shouldFireAt(Site site, std::uint64_t hit,
                  std::uint64_t scope = 0);

/**
 * Arm sites from a "site:spec,site:spec,..." string. Returns false
 * (and fills @p error if non-null) on a malformed spec, leaving the
 * previous arming untouched. An empty @p spec disarms everything.
 */
bool tryConfigure(const std::string &spec, std::uint64_t seed,
                  std::string *error = nullptr);

/** tryConfigure() that fatal()s on a malformed spec — the CLI path. */
void configure(const std::string &spec, std::uint64_t seed);

/** Arm from the faults= / fault_seed= knobs (environment fallbacks
 * MANNA_FAULTS / MANNA_FAULT_SEED). Called by sweepOptionsFromConfig
 * so every sweep bench exposes the knobs without code changes. */
void configureFromConfig(const Config &cfg);

/** Disarm every site and zero the hit/fire counters. */
void reset();

/** Hits observed at @p site this process (armed or not counts only
 * while armed — disabled sites skip the counter entirely). */
std::uint64_t hitCount(Site site);

/** Times @p site actually fired this process. */
std::uint64_t fireCount(Site site);

/** One-line summary of the armed schedule, for diagnostics. */
std::string describeArmed();

} // namespace manna::fault

#endif // MANNA_COMMON_FAULT_HH
