/**
 * @file
 * Cooperative graceful shutdown on SIGTERM/SIGINT.
 *
 * The handler only sets a process-wide atomic; everything else is
 * polled. The sweep runner's watchdog scanner fires every in-flight
 * CancelToken when the flag goes up (so running simulations unwind
 * through the usual cancellation path), the journal is flushed and
 * fsync'd as on any normal exit, and the shard coordinator forwards
 * SIGTERM to its live workers — an interrupted sweep resumes
 * byte-identically from its journal. See docs/ROBUSTNESS.md.
 */

#ifndef MANNA_COMMON_SHUTDOWN_HH
#define MANNA_COMMON_SHUTDOWN_HH

namespace manna
{

/** Install the SIGTERM/SIGINT handlers (idempotent; the first call
 * wins). Safe to call from any sweep entry point. */
void installShutdownHandlers();

/** True once SIGTERM or SIGINT was received (or requestShutdown()
 * was called). Never resets except via resetShutdownForTest(). */
bool shutdownRequested();

/** The signal number that triggered the shutdown (0 when none). */
int shutdownSignal();

/** Programmatic trigger: behaves exactly like receiving @p sig.
 * Used by tests and by in-process embedders that want the graceful
 * drain without a real signal. */
void requestShutdown(int sig);

/** Test hook: clear the latch so the next test starts clean. */
void resetShutdownForTest();

} // namespace manna

#endif // MANNA_COMMON_SHUTDOWN_HH
