/**
 * @file
 * Small string helpers used by the assembler, config parser, and
 * report formatting.
 */

#ifndef MANNA_COMMON_STRUTIL_HH
#define MANNA_COMMON_STRUTIL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace manna
{

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty tokens are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on any run of whitespace; empty tokens are discarded. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Lowercase an ASCII string. */
std::string toLower(std::string_view s);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Parse a signed integer; nullopt on any trailing garbage. */
std::optional<std::int64_t> parseInt(std::string_view s);

/** Parse a double; nullopt on any trailing garbage. */
std::optional<double> parseDouble(std::string_view s);

/** Human-readable byte count, e.g. "16 KiB", "2 MiB". */
std::string formatBytes(std::uint64_t bytes);

/** Format a double with @p digits significant digits. */
std::string formatSig(double v, int digits = 3);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 std::string_view sep);

} // namespace manna

#endif // MANNA_COMMON_STRUTIL_HH
