/**
 * @file
 * ASCII table rendering for the benchmark harness. Every reproduced
 * paper table/figure prints through this so output is uniform and
 * easy to diff across runs.
 */

#ifndef MANNA_COMMON_TABLE_HH
#define MANNA_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace manna
{

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"Benchmark", "Speedup"});
 *   t.addRow({"copy", "41.2x"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Number of data rows (separators excluded). */
    std::size_t rowCount() const;

    /** Render with column alignment and a header rule. */
    std::string render() const;

    /**
     * Render as CSV (RFC-4180-style quoting; separators skipped) for
     * plotting the reproduced figures. Enabled in the bench binaries
     * via the MANNA_CSV environment variable.
     */
    std::string renderCsv() const;

  private:
    std::vector<std::string> header_;
    // A row with a single empty sentinel cell marks a separator.
    std::vector<std::vector<std::string>> rows_;
    static const std::vector<std::string> kSeparator;
};

/** Format a multiplicative factor, e.g. 39.4 -> "39.4x". */
std::string formatFactor(double factor);

/** Format a percentage, e.g. 0.498 -> "49.8%". */
std::string formatPercent(double fraction);

} // namespace manna

#endif // MANNA_COMMON_TABLE_HH
