/**
 * @file
 * Lightweight statistics collection for the simulator: named counters
 * and accumulators grouped under a StatGroup, plus geometric-mean and
 * distribution helpers used by the experiment harness.
 */

#ifndef MANNA_COMMON_STATS_HH
#define MANNA_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace manna
{

/**
 * A named collection of scalar statistics.
 *
 * Counters are created lazily on first reference and iterate in name
 * order, which keeps report output deterministic.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Increment a counter (creating it at zero if absent). */
    void inc(const std::string &key, double amount = 1.0);

    /** Overwrite a value. */
    void set(const std::string &key, double value);

    /** Read a value; 0 if absent. */
    double get(const std::string &key) const;

    /** True if the counter exists. */
    bool has(const std::string &key) const;

    /** Merge: add every counter of @p other into this group. */
    void merge(const StatGroup &other);

    /** Reset all counters to zero (keys retained). */
    void clear();

    /** Group name as given at construction. */
    const std::string &name() const { return name_; }

    /** All (key, value) pairs in name order. */
    const std::map<std::string, double> &entries() const
    {
        return values_;
    }

    /** Render as "key = value" lines, one per counter. */
    std::string render() const;

  private:
    std::string name_;
    std::map<std::string, double> values_;
};

/** Geometric mean of positive values; 0 on empty input. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 on empty input. */
double mean(const std::vector<double> &values);

/** Minimum / maximum (0 on empty input). */
double minOf(const std::vector<double> &values);
double maxOf(const std::vector<double> &values);

/**
 * A simple streaming histogram with fixed-width buckets, used by the
 * simulator for latency/occupancy distributions.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double v, double weight = 1.0);

    double count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
    double min() const { return minSeen_; }
    double max() const { return maxSeen_; }

    /** Bucket weights, including underflow [0] and overflow [last]. */
    const std::vector<double> &buckets() const { return buckets_; }

    std::string render(const std::string &label) const;

  private:
    double lo_;
    double hi_;
    std::vector<double> buckets_; // [under, b0..bn-1, over]
    double count_ = 0.0;
    double sum_ = 0.0;
    double minSeen_ = 0.0;
    double maxSeen_ = 0.0;
    bool any_ = false;
};

} // namespace manna

#endif // MANNA_COMMON_STATS_HH
