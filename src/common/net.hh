/**
 * @file
 * Minimal POSIX socket layer for the simulation service
 * (docs/SERVICE.md): address parsing for the `server=` knob, listen /
 * accept / connect helpers, and short-read/short-write-free transfer
 * loops the framing protocol (harness/proto.hh) builds on.
 *
 * Addresses take two forms:
 *   unix:/path/to/socket   a Unix-domain stream socket
 *   tcp:host:port          a TCP stream socket (IPv4/IPv6 via
 *                          getaddrinfo)
 * A bare path containing '/' is accepted as shorthand for unix:PATH.
 *
 * Everything here is transport only — no protocol knowledge. Sends
 * use MSG_NOSIGNAL so a peer that vanished surfaces as an error
 * return, never as SIGPIPE killing the daemon.
 */

#ifndef MANNA_COMMON_NET_HH
#define MANNA_COMMON_NET_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace manna::net
{

/** A parsed `server=` endpoint. */
struct NetAddress
{
    enum class Kind
    {
        Unix, ///< Unix-domain stream socket at `path`
        Tcp,  ///< TCP stream socket at `host`:`port`
    };

    Kind kind = Kind::Unix;
    std::string path;        ///< Unix socket path (Kind::Unix)
    std::string host;        ///< host name or literal (Kind::Tcp)
    std::uint16_t port = 0;  ///< TCP port (Kind::Tcp)

    /** Canonical text form ("unix:/x/y" or "tcp:host:port"). */
    std::string describe() const;
};

/**
 * Parse "unix:PATH", "tcp:HOST:PORT", or a bare PATH containing '/'.
 * Throws ConfigError on malformed input (empty path, missing or
 * out-of-range port, over-long Unix path).
 */
NetAddress parseAddress(const std::string &text);

/** Move-only fd owner: closes on destruction, -1 = empty. */
class ScopedFd
{
  public:
    ScopedFd() = default;
    explicit ScopedFd(int fd) : fd_(fd) {}
    ~ScopedFd() { reset(); }

    ScopedFd(ScopedFd &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    ScopedFd &
    operator=(ScopedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Close (if open) and adopt @p fd. */
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/**
 * Create, bind, and listen on @p addr. A stale Unix socket file is
 * unlinked first (the daemon owns its path). Throws IoError when the
 * socket cannot be created or bound.
 */
ScopedFd listenOn(const NetAddress &addr);

/**
 * Wait up to @p timeoutMs for a connection on @p listenFd and accept
 * it. Returns the connected fd, or -1 when the timeout elapsed (or
 * the wait was interrupted) with no connection — the caller's accept
 * loop polls so it can observe shutdown flags between waits.
 */
int acceptOn(int listenFd, int timeoutMs);

/**
 * Connect to @p addr. Returns the connected fd or -1 on failure
 * (clients retry with backoff — a daemon still starting up is not an
 * error worth a warning per attempt).
 */
int connectTo(const NetAddress &addr);

/** Write all @p n bytes (retrying short writes / EINTR). False when
 * the peer is gone or the fd errors. */
bool sendAll(int fd, const void *buf, std::size_t n);

/** Read exactly @p n bytes. Returns n on success, 0 on clean EOF
 * before any byte, and the short count (or 0) on a torn transfer /
 * error — the framing layer tells the cases apart. */
std::size_t recvAll(int fd, void *buf, std::size_t n);

} // namespace manna::net

#endif // MANNA_COMMON_NET_HH
