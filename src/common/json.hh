/**
 * @file
 * Minimal JSON utilities for the observability layer: string
 * escaping, exact double formatting, a syntax validator, and a parser
 * for the flat `{"key": number, ...}` objects the StatRegistry
 * serializes to. Hand-rolled on purpose — the repo takes no external
 * dependencies, and the consumers (stats.json, Chrome trace export)
 * only ever need this small subset.
 */

#ifndef MANNA_COMMON_JSON_HH
#define MANNA_COMMON_JSON_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace manna
{

/** Escape @p s for use inside a JSON string literal (adds no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Format a finite double as a JSON number that round-trips exactly
 * (17 significant digits). Non-finite values — which valid counters
 * never produce — render as null so the document stays parseable.
 */
std::string jsonNumber(double v);

/** True iff @p text is one syntactically valid JSON value. */
bool jsonValidate(std::string_view text);

/**
 * Parse a flat JSON object whose values are all numbers, e.g.
 * `{"tile.0.emac.busy_cycles": 123, "noc.reduce_ops": 4}`.
 * Returns nullopt on any syntax error, non-number value, or
 * duplicate key. The inverse of StatRegistry::toJson().
 */
std::optional<std::map<std::string, double>>
jsonParseFlatNumberObject(std::string_view text);

} // namespace manna

#endif // MANNA_COMMON_JSON_HH
