#include "stat_registry.hh"

#include <algorithm>

#include "json.hh"
#include "strutil.hh"

namespace manna
{

void
StatRegistry::set(const std::string &key, double value)
{
    values_[key] = value;
}

void
StatRegistry::inc(const std::string &key, double amount)
{
    values_[key] += amount;
}

double
StatRegistry::get(const std::string &key) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatRegistry::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

void
StatRegistry::adopt(const std::string &prefix, const StatGroup &group)
{
    for (const auto &[k, v] : group.entries())
        values_[prefix.empty() ? k : prefix + "." + k] = v;
}

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const auto &[k, v] : other.values_)
        values_[k] += v;
    for (const auto &[k, text] : other.descriptions_)
        descriptions_.emplace(k, text);
}

void
StatRegistry::describe(const std::string &key, const std::string &text)
{
    descriptions_[key] = text;
}

std::string
StatRegistry::description(const std::string &key) const
{
    const auto exact = descriptions_.find(key);
    if (exact != descriptions_.end())
        return exact->second;
    // Longest dotted-suffix pattern wins: "emac.busy_cycles" matches
    // "tile.3.emac.busy_cycles" but not "emac.busy_cycles_total".
    const std::string *best = nullptr;
    std::size_t bestLen = 0;
    for (const auto &[pattern, text] : descriptions_) {
        if (pattern.size() >= key.size() || pattern.size() <= bestLen)
            continue;
        if (key.compare(key.size() - pattern.size(), pattern.size(),
                        pattern) == 0 &&
            key[key.size() - pattern.size() - 1] == '.') {
            best = &text;
            bestLen = pattern.size();
        }
    }
    return best ? *best : std::string();
}

std::string
StatRegistry::renderDescribed() const
{
    std::size_t width = 0;
    for (const auto &[k, v] : values_)
        width = std::max(width, k.size());
    std::string out;
    for (const auto &[k, v] : values_) {
        out += strformat("%-*s %14.6g", static_cast<int>(width),
                         k.c_str(), v);
        const std::string text = description(k);
        if (!text.empty())
            out += "  # " + text;
        out += "\n";
    }
    return out;
}

double
StatRegistry::sumOver(const std::string &prefix,
                      const std::string &suffix) const
{
    const std::string open = prefix + ".";
    double sum = 0.0;
    for (auto it = values_.lower_bound(open); it != values_.end();
         ++it) {
        if (!startsWith(it->first, open))
            break;
        if (it->first.size() > suffix.size() &&
            it->first.compare(it->first.size() - suffix.size(),
                              suffix.size(), suffix) == 0 &&
            it->first[it->first.size() - suffix.size() - 1] == '.')
            sum += it->second;
    }
    return sum;
}

std::string
StatRegistry::toJson(int indent) const
{
    const std::string nl = indent > 0 ? "\n" : "";
    const std::string pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent), ' ')
                   : "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : values_) {
        if (!first)
            out += ",";
        first = false;
        out += nl + pad + "\"" + jsonEscape(k) +
               "\":" + (indent > 0 ? " " : "") + jsonNumber(v);
    }
    out += nl + "}";
    return out;
}

std::optional<StatRegistry>
StatRegistry::fromJson(std::string_view text)
{
    auto parsed = jsonParseFlatNumberObject(text);
    if (!parsed)
        return std::nullopt;
    StatRegistry reg;
    reg.values_ = std::move(*parsed);
    return reg;
}

std::string
StatRegistry::render() const
{
    std::string out;
    for (const auto &[k, v] : values_)
        out += strformat("%-48s %.6g\n", k.c_str(), v);
    return out;
}

} // namespace manna
