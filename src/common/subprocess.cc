#include "subprocess.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/event_log.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna
{

namespace
{

/** Open @p path for append in the child; returns -1 on "" (leave the
 * stream alone) and on failure (stream stays shared, which at least
 * preserves the output somewhere). */
int
openLog(const std::string &path)
{
    if (path.empty())
        return -1;
    return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
}

ProcessStatus
decodeWait(pid_t reaped, int status)
{
    ProcessStatus out;
    if (reaped == 0) {
        out.running = true;
        return out;
    }
    if (WIFEXITED(status)) {
        out.exited = true;
        out.exitCode = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        out.signaled = true;
        out.signal = WTERMSIG(status);
    }
    return out;
}

} // namespace

pid_t
spawnProcess(const std::vector<std::string> &argv,
             const std::string &stdoutPath,
             const std::string &stderrPath)
{
    if (argv.empty()) {
        warn("spawnProcess: empty argv");
        return -1;
    }
    if (fault::anyArmed() &&
        fault::shouldFire(fault::Site::ProcSpawn)) {
        warn("spawnProcess: injected spawn failure (%s)",
             fault::siteName(fault::Site::ProcSpawn));
        return -1;
    }
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    // exec-error pipe: the child writes errno when execvp fails, the
    // write end closes on a successful exec (CLOEXEC), so the parent
    // reads either one errno or clean EOF. Both parent-side fds must
    // be closed on EVERY return path below — the shard coordinator
    // spawns workers in a loop for hours, and a leaked pair per
    // failed spawn exhausts the fd table (regression-tested by
    // counting /proc/self/fd in test_robustness.cc).
    int errPipe[2] = {-1, -1};
    if (::pipe2(errPipe, O_CLOEXEC) != 0) {
        warn("spawnProcess: pipe2 failed (%s)", std::strerror(errno));
        return -1;
    }

    // Parent-side span only: the child execs immediately, and its
    // inherited event-log buffer dies with the exec (never flushed),
    // so the fork can't duplicate trace lines.
    events::Span span("proc.spawn", "exe=" + argv[0]);
    const pid_t pid = ::fork();
    if (pid < 0) {
        span.end("ok=0");
        warn("spawnProcess: fork failed (%s)", std::strerror(errno));
        ::close(errPipe[0]);
        ::close(errPipe[1]);
        return -1;
    }
    if (pid == 0) {
        // Child: redirect, then exec. Only async-signal-safe calls
        // (plus open/dup2) between fork and exec.
        ::close(errPipe[0]);
        const int outFd = openLog(stdoutPath);
        if (outFd >= 0) {
            ::dup2(outFd, STDOUT_FILENO);
            ::close(outFd);
        }
        const int errFd = openLog(stderrPath);
        if (errFd >= 0) {
            ::dup2(errFd, STDERR_FILENO);
            ::close(errFd);
        }
        ::execvp(cargv[0], cargv.data());
        // exec failed: report errno to the parent through the pipe
        // (and on the possibly-redirected stderr for the log file),
        // then die with a distinctive code.
        const int err = errno;
        ssize_t ignored =
            ::write(errPipe[1], &err, sizeof(err));
        (void)ignored;
        ::dprintf(STDERR_FILENO, "exec %s failed: %s\n", cargv[0],
                  std::strerror(err));
        ::_exit(127);
    }

    // Parent: the write end belongs to the child now.
    ::close(errPipe[1]);
    int execErrno = 0;
    ssize_t n;
    do {
        n = ::read(errPipe[0], &execErrno, sizeof(execErrno));
    } while (n < 0 && errno == EINTR);
    ::close(errPipe[0]);
    if (n > 0) {
        // exec never happened: reap the 127 exit here so the caller
        // doesn't poll a corpse, and fail the spawn explicitly.
        span.end("ok=0");
        warn("spawnProcess: exec %s failed (%s)", argv[0].c_str(),
             std::strerror(execErrno));
        int status = 0;
        ::waitpid(pid, &status, 0);
        return -1;
    }
    span.end(strformat("pid=%d", static_cast<int>(pid)));
    return pid;
}

ProcessStatus
pollProcess(pid_t pid)
{
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r < 0) {
        warn("waitpid(%d) failed (%s)", static_cast<int>(pid),
             std::strerror(errno));
        ProcessStatus out;
        out.exited = true;
        out.exitCode = 127;
        return out;
    }
    return decodeWait(r == pid ? pid : 0, status);
}

ProcessStatus
waitProcess(pid_t pid)
{
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r < 0) {
        warn("waitpid(%d) failed (%s)", static_cast<int>(pid),
             std::strerror(errno));
        ProcessStatus out;
        out.exited = true;
        out.exitCode = 127;
        return out;
    }
    return decodeWait(pid, status);
}

void
killProcess(pid_t pid, int sig)
{
    if (pid <= 0)
        return;
    ::kill(pid, sig == 0 ? SIGKILL : sig);
}

std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

std::string
shellJoin(const std::vector<std::string> &argv)
{
    std::string out;
    for (std::size_t i = 0; i < argv.size(); ++i) {
        if (i > 0)
            out += ' ';
        out += shellQuote(argv[i]);
    }
    return out;
}

} // namespace manna
