#include "table.hh"

#include <algorithm>

#include "logging.hh"
#include "strutil.hh"

namespace manna
{

const std::vector<std::string> Table::kSeparator = {""};

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    MANNA_ASSERT(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    MANNA_ASSERT(cells.size() == header_.size(),
                 "row width %zu != header width %zu", cells.size(),
                 header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.push_back(kSeparator);
}

std::size_t
Table::rowCount() const
{
    std::size_t n = 0;
    for (const auto &r : rows_)
        if (r != kSeparator)
            ++n;
    return n;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        if (row == kSeparator)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += strformat("%-*s", static_cast<int>(widths[c]),
                              row[c].c_str());
            if (c + 1 < row.size())
                line += "  ";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    auto rule = [&]() {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            line += std::string(widths[c], '-');
            if (c + 1 < widths.size())
                line += "  ";
        }
        return line + "\n";
    };

    std::string out = renderRow(header_);
    out += rule();
    for (const auto &row : rows_) {
        if (row == kSeparator)
            out += rule();
        else
            out += renderRow(row);
    }
    return out;
}

namespace
{

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::renderCsv() const
{
    auto renderRow = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                line += ',';
            line += csvEscape(row[c]);
        }
        return line + "\n";
    };
    std::string out = renderRow(header_);
    for (const auto &row : rows_) {
        if (row != kSeparator)
            out += renderRow(row);
    }
    return out;
}

std::string
formatFactor(double factor)
{
    if (factor >= 100.0)
        return strformat("%.0fx", factor);
    if (factor >= 10.0)
        return strformat("%.1fx", factor);
    return strformat("%.2fx", factor);
}

std::string
formatPercent(double fraction)
{
    return strformat("%.1f%%", fraction * 100.0);
}

} // namespace manna
