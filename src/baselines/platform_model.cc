#include "platform_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace manna::baselines
{

namespace
{

/**
 * Number of device-kernel launches one NTM kernel costs per time
 * step on a framework-driven platform (PyTorch 1.0 eager mode, as
 * the paper used): every unfused tensor op is a separate launch.
 */
double
launchesPerStep(mann::Kernel k, const mann::MannConfig &cfg)
{
    const double heads =
        static_cast<double>(cfg.numReadHeads + cfg.numWriteHeads);
    switch (k) {
      case mann::Kernel::Controller:
        // Per layer: matmul + bias + activation, plus the output
        // projection.
        return 3.0 * static_cast<double>(cfg.controllerLayers) *
                   (cfg.controllerKind == mann::ControllerKind::LSTM
                        ? 4.0
                        : 1.0) +
               2.0;
      case mann::Kernel::Heads:
        // Projection matmul plus the parameter squashing ops.
        return heads * 6.0;
      case mann::Kernel::KeySimilarity:
        // Matvec + norm + divide per head.
        return heads * 3.0;
      case mann::Kernel::ContentWeighting:
        // scale, exp, sum, divide.
        return heads * 4.0;
      case mann::Kernel::Interpolation:
        return heads * 3.0;
      case mann::Kernel::ShiftWeighting:
        return heads * 2.0;
      case mann::Kernel::Sharpening:
        return heads * 4.0;
      case mann::Kernel::SoftRead:
        return static_cast<double>(cfg.numReadHeads);
      case mann::Kernel::SoftWrite:
        // erase product, 1-x, multiply, add product, add, write.
        return static_cast<double>(cfg.numWriteHeads) * 6.0;
    }
    return 1.0;
}

/**
 * Effective DRAM traffic of one kernel. Matrix kernels run as fused
 * BLAS calls (traffic = the streamed operands); element-wise and
 * normalization kernels run unfused, materializing an intermediate
 * tensor per op (~2 reads + 1 write per element-wise/special op).
 */
double
effectiveBytes(mann::Kernel k, const mann::KernelWork &work)
{
    switch (k) {
      case mann::Kernel::Controller:
      case mann::Kernel::Heads:
      case mann::Kernel::KeySimilarity:
      case mann::Kernel::SoftRead:
        return static_cast<double>(work.bytesTouched());
      default: {
        const double unfusedOps = static_cast<double>(
            work.elwiseOps + work.specialOps + work.macOps);
        return std::max(static_cast<double>(work.bytesTouched()),
                        12.0 * unfusedOps);
      }
    }
}

} // namespace

PlatformModel::PlatformModel(PlatformSpec spec, bool perKernelLaunch)
    : spec_(std::move(spec)), perKernelLaunch_(perKernelLaunch)
{
    MANNA_ASSERT(spec_.peakGflops > 0 && spec_.memBandwidthGBs > 0,
                 "platform spec incomplete");
}

KernelCost
PlatformModel::kernelCost(const mann::KernelWork &work) const
{
    KernelCost cost;
    const double util = std::min(
        1.0, static_cast<double>(work.parallelism) /
                 spec_.fullUtilizationLanes);
    cost.utilization = util;

    const double effectiveGflops =
        spec_.peakGflops * std::max(util, 1e-4);
    const double specialPenalty =
        work.specialOps > 0
            ? 1.0 + static_cast<double>(work.specialOps) /
                        std::max<double>(
                            static_cast<double>(work.flops()), 1.0) *
                        (spec_.specialOpDerate - 1.0)
            : 1.0;
    const double computeSeconds =
        static_cast<double>(work.flops()) * specialPenalty /
        (effectiveGflops * 1e9);
    const double memorySeconds =
        static_cast<double>(work.bytesTouched()) /
        (spec_.memBandwidthGBs * 1e9 * spec_.bandwidthEfficiency);
    cost.seconds = std::max(computeSeconds, memorySeconds);

    const double busyPower =
        spec_.idleWatts + (spec_.tdpWatts - spec_.idleWatts) * util;
    cost.joules = cost.seconds * busyPower;
    return cost;
}

PlatformStepCost
PlatformModel::stepCost(const mann::OpCounter &counter) const
{
    return stepCostBatched(counter, 1);
}

PlatformStepCost
PlatformModel::stepCostBatched(const mann::OpCounter &counter,
                               std::size_t batch) const
{
    MANNA_ASSERT(batch >= 1, "batch must be >= 1");
    const double b = static_cast<double>(batch);
    PlatformStepCost total;
    for (mann::Kernel k : mann::allKernels()) {
        mann::KernelWork work = counter.kernelWork(k);
        const bool weightShared = k == mann::Kernel::Controller ||
                                  k == mann::Kernel::Heads;

        // Scale the work to the batch. Compute always scales; memory
        // traffic scales except for shared weights (one weight word
        // per MAC in the dense kernels, fetched once per batch).
        double scaledBytes;
        if (weightShared) {
            const double weightBytes =
                4.0 * static_cast<double>(work.macOps);
            const double stateBytes = std::max(
                static_cast<double>(work.bytesTouched()) - weightBytes,
                0.0);
            scaledBytes = weightBytes + stateBytes * b;
        } else {
            scaledBytes = static_cast<double>(work.bytesTouched()) * b;
        }
        work.macOps = static_cast<std::uint64_t>(
            static_cast<double>(work.macOps) * b);
        work.elwiseOps = static_cast<std::uint64_t>(
            static_cast<double>(work.elwiseOps) * b);
        work.specialOps = static_cast<std::uint64_t>(
            static_cast<double>(work.specialOps) * b);
        work.memReads = static_cast<std::uint64_t>(scaledBytes / 4.0);
        work.memWrites = 0;
        work.parallelism = static_cast<std::uint64_t>(
            static_cast<double>(work.parallelism) * b);

        KernelCost cost;
        const double util = std::min(
            1.0, static_cast<double>(work.parallelism) /
                     spec_.fullUtilizationLanes);
        cost.utilization = util;

        // Compute/memory roofline with the unfused-traffic model.
        const double effectiveGflops =
            spec_.peakGflops * std::max(util, 1e-4);
        const double specialPenalty =
            work.specialOps > 0 ? spec_.specialOpDerate : 1.0;
        const double computeSeconds =
            static_cast<double>(work.flops()) *
            (work.specialOps * 2 > work.flops() ? specialPenalty
                                                : 1.0) /
            (effectiveGflops * 1e9);
        const double memorySeconds =
            effectiveBytes(k, work) /
            (spec_.memBandwidthGBs * 1e9 * spec_.bandwidthEfficiency);
        double seconds = std::max(computeSeconds, memorySeconds);

        if (perKernelLaunch_)
            seconds += launchesPerStep(k, counter.config()) *
                       spec_.kernelLaunchSeconds;
        else
            seconds += spec_.kernelLaunchSeconds; // one dispatch

        const double busyPower =
            spec_.idleWatts +
            (spec_.tdpWatts - spec_.idleWatts) * util;
        cost.seconds = seconds;
        // Launch/dispatch gaps burn near-idle power; active time
        // burns utilization-scaled power.
        const double activeSeconds =
            std::max(computeSeconds, memorySeconds);
        cost.joules = activeSeconds * busyPower +
                      (seconds - activeSeconds) * spec_.idleWatts;

        auto &slot = total.groups[mann::groupOf(k)];
        slot.seconds += cost.seconds;
        slot.joules += cost.joules;
        slot.utilization = std::max(slot.utilization, util);
        total.seconds += cost.seconds;
        total.joules += cost.joules;
    }
    return total;
}

PlatformSpec
pascal1080Ti()
{
    PlatformSpec spec;
    spec.name = "Pascal GTX 1080-Ti";
    spec.areaMm2 = 470.0;
    spec.technologyNm = 16.0;
    spec.frequencyMhz = 1480.0;
    spec.tdpWatts = 250.0;
    spec.idleWatts = 55.0;
    spec.onChipMiB = 11.9;
    spec.memBandwidthGBs = 484.0;
    spec.peakGflops = 11340.0;
    // PyTorch 1.0 eager-mode dispatch plus CUDA launch, per op.
    spec.kernelLaunchSeconds = 24e-6;
    // 28 SMs x 2048 resident threads for full occupancy.
    spec.fullUtilizationLanes = 28.0 * 2048.0;
    return spec;
}

PlatformSpec
turing2080Ti()
{
    PlatformSpec spec;
    spec.name = "Turing RTX 2080-Ti";
    spec.areaMm2 = 750.0;
    spec.technologyNm = 12.0;
    spec.frequencyMhz = 1500.0;
    spec.tdpWatts = 250.0;
    spec.idleWatts = 55.0;
    spec.onChipMiB = 29.5;
    spec.memBandwidthGBs = 616.0;
    spec.peakGflops = 13450.0;
    // Lower per-op overhead than Pascal (improved driver stack and
    // scheduling in the Turing-era software).
    spec.kernelLaunchSeconds = 16e-6;
    spec.fullUtilizationLanes = 68.0 * 1024.0;
    return spec;
}

PlatformSpec
skylakeXeon()
{
    PlatformSpec spec;
    spec.name = "Skylake Xeon";
    spec.areaMm2 = 325.0;
    spec.technologyNm = 14.0;
    spec.frequencyMhz = 2100.0;
    spec.tdpWatts = 140.0;
    spec.idleWatts = 45.0;
    spec.onChipMiB = 38.5;
    spec.memBandwidthGBs = 115.0;
    spec.peakGflops = 1900.0; // 28 cores x AVX-512 FMA
    spec.kernelLaunchSeconds = 2e-6; // framework op dispatch only
    spec.fullUtilizationLanes = 28.0 * 32.0;
    spec.specialOpDerate = 6.0;
    return spec;
}

} // namespace manna::baselines
