/**
 * @file
 * The Figure 14 ablation variants: Manna against three designs that
 * strip its architectural features.
 *
 *  - MemHeavy: big banked memories, but no hardware transpose and no
 *    element-wise support (plain MAC units);
 *  - MemHeavy-Transpose: adds the DMAT + lateral links only;
 *  - MemHeavy-eMAC: adds the eMAC units only.
 */

#ifndef MANNA_BASELINES_ABLATION_HH
#define MANNA_BASELINES_ABLATION_HH

#include <string>
#include <vector>

#include "arch/manna_config.hh"

namespace manna::baselines
{

struct AblationVariant
{
    std::string name;
    arch::MannaConfig config;
};

/** All four designs of Figure 14, Manna last. */
std::vector<AblationVariant> figure14Variants();

} // namespace manna::baselines

#endif // MANNA_BASELINES_ABLATION_HH
