#include "ablation.hh"

namespace manna::baselines
{

std::vector<AblationVariant>
figure14Variants()
{
    return {
        {"MemHeavy", arch::MannaConfig::memHeavy()},
        {"MemHeavy-Transpose", arch::MannaConfig::memHeavyTranspose()},
        {"MemHeavy-eMAC", arch::MannaConfig::memHeavyEmac()},
        {"Manna", arch::MannaConfig::baseline16()},
    };
}

} // namespace manna::baselines
