/**
 * @file
 * Analytic baseline platform models (the paper's comparison points:
 * GTX 1080-Ti, RTX 2080-Ti, and the Skylake CPU used in Figure 2).
 *
 * Substitution note (DESIGN.md): we cannot run PyTorch+cuDNN on the
 * authors' GPUs offline, so baseline per-kernel times come from a
 * roofline model with two effects the paper identifies as dominant:
 *
 *  1. streaming access kernels run at (utilization-scaled) memory
 *     bandwidth;
 *  2. the narrow addressing kernels cannot fill the machine, so they
 *     pay a fixed per-kernel launch overhead and run at the
 *     utilization their limited parallelism allows (the "narrow
 *     task" effect of Section 3, citing Pagoda [40]).
 *
 * Energy integrates a utilization-dependent power between idle and
 * TDP. The constants are each platform's public specifications.
 */

#ifndef MANNA_BASELINES_PLATFORM_MODEL_HH
#define MANNA_BASELINES_PLATFORM_MODEL_HH

#include <map>
#include <string>
#include <vector>

#include "mann/op_counter.hh"

namespace manna::baselines
{

/** Specification of a baseline platform. */
struct PlatformSpec
{
    std::string name;
    double areaMm2 = 0.0;
    double technologyNm = 0.0;
    double frequencyMhz = 0.0;
    double tdpWatts = 0.0;
    double idleWatts = 0.0;
    double onChipMiB = 0.0;
    double memBandwidthGBs = 0.0;

    /** Peak FP32 throughput in GFLOP/s. */
    double peakGflops = 0.0;

    /** Fixed overhead charged per kernel invocation (seconds). */
    double kernelLaunchSeconds = 0.0;

    /** Parallel lanes needed for full utilization (threads the
     * machine wants resident to saturate). */
    double fullUtilizationLanes = 1.0;

    /** Fraction of peak bandwidth streaming kernels achieve. */
    double bandwidthEfficiency = 0.85;

    /** Throughput derate for special functions (exp/pow/div). */
    double specialOpDerate = 4.0;
};

/** Per-kernel timing/energy on a baseline platform. */
struct KernelCost
{
    double seconds = 0.0;
    double joules = 0.0;
    double utilization = 0.0;
};

/** Whole-step cost report. */
struct PlatformStepCost
{
    double seconds = 0.0;
    double joules = 0.0;
    std::map<mann::KernelGroup, KernelCost> groups;

    double stepsPerJoule() const
    {
        return joules > 0.0 ? 1.0 / joules : 0.0;
    }
};

/**
 * Roofline + narrow-task model evaluating NTM kernels on a platform.
 */
class PlatformModel
{
  public:
    PlatformModel(PlatformSpec spec, bool perKernelLaunch);

    const PlatformSpec &spec() const { return spec_; }

    /** Time/energy of one kernel execution for one time step. */
    KernelCost kernelCost(const mann::KernelWork &work) const;

    /** Full NTM time step (all kernels, Table 1 decomposition). */
    PlatformStepCost stepCost(const mann::OpCounter &counter) const;

    /**
     * Cost of one time step for a *batch* of independent sequences
     * (Section 1's batching argument). Weight traffic in the
     * controller and head kernels is shared across the batch; the
     * differentiable external memory is dynamic state unique to each
     * sequence, so every access kernel's traffic scales with the
     * batch size. Exposed parallelism grows with the batch, improving
     * utilization; kernel launches are amortized across it.
     */
    PlatformStepCost stepCostBatched(const mann::OpCounter &counter,
                                     std::size_t batch) const;

  private:
    PlatformSpec spec_;
    /** GPUs pay the launch overhead per kernel; CPUs do not. */
    bool perKernelLaunch_;
};

/** The paper's platforms (Table 3 + Section 3). */
PlatformSpec pascal1080Ti();
PlatformSpec turing2080Ti();
PlatformSpec skylakeXeon();

} // namespace manna::baselines

#endif // MANNA_BASELINES_PLATFORM_MODEL_HH
