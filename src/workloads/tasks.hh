/**
 * @file
 * Task input generators: produce the per-step input vectors (and,
 * where meaningful, target outputs) for each benchmark family.
 *
 * Inference *performance* on Manna depends only on tensor shapes and
 * sequence length, so the generators' job is to provide realistic,
 * reproducible stimulus with the right structure: delimiters and
 * phases for the algorithmic tasks, fact/query streams for bAbI, and
 * graph descriptions plus queries for the DNC-style tasks.
 */

#ifndef MANNA_WORKLOADS_TASKS_HH
#define MANNA_WORKLOADS_TASKS_HH

#include <vector>

#include "common/rng.hh"
#include "tensor/vector_ops.hh"
#include "workloads/benchmarks.hh"

namespace manna::workloads
{

using tensor::FVec;

/** A generated episode: the input sequence and (optionally) the
 * step-aligned target outputs (empty when not defined). */
struct Episode
{
    std::vector<FVec> inputs;
    std::vector<FVec> targets;
};

/**
 * Generate an episode for a benchmark with roughly @p steps input
 * vectors (generators round to their natural phase boundaries, so
 * the exact length may differ slightly).
 */
Episode generateEpisode(const Benchmark &benchmark, std::size_t steps,
                        Rng &rng);

// Individual generators (exposed for tests).

/** Copy: present `items` random bit vectors, delimiter, then expect
 * them back during a recall phase of equal length. */
Episode copyEpisode(std::size_t inputDim, std::size_t items, Rng &rng);

/** Repeat-copy: like copy, with a repeat count channel; the recall
 * phase repeats the sequence `repeats` times. */
Episode repeatCopyEpisode(std::size_t inputDim, std::size_t items,
                          std::size_t repeats, Rng &rng);

/** Associative recall: key->value item pairs, then a query key whose
 * following item must be produced. */
Episode associativeRecallEpisode(std::size_t inputDim,
                                 std::size_t pairs, Rng &rng);

/** Dynamic n-grams: a random 2-bit-context binary source. */
Episode ngramsEpisode(std::size_t steps, Rng &rng);

/** Priority sort: vectors tagged with priorities; targets are the
 * vectors in descending priority order. */
Episode prioritySortEpisode(std::size_t inputDim, std::size_t items,
                            Rng &rng);

/** bAbI-like: a stream of entity-relation facts followed by queries
 * answerable from the facts. */
Episode babiEpisode(std::size_t inputDim, std::size_t facts,
                    std::size_t queries, Rng &rng);

/** Graph tasks: the graph's edge list is streamed first, then task
 * queries (traversal path / shortest-path endpoints / inference
 * probes). */
Episode graphEpisode(TaskKind kind, std::size_t inputDim,
                     std::size_t steps, Rng &rng);

/** Mini-SHRDLU: block-world board description plus move/query
 * dialogue turns. */
Episode shrdluEpisode(std::size_t inputDim, std::size_t steps,
                      Rng &rng);

} // namespace manna::workloads

#endif // MANNA_WORKLOADS_TASKS_HH
