#include "benchmarks.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace manna::workloads
{

const char *
toString(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Copy:
        return "copy";
      case TaskKind::RepeatCopy:
        return "repeat-copy";
      case TaskKind::AssociativeRecall:
        return "associative-recall";
      case TaskKind::DynamicNgrams:
        return "dynamic-ngrams";
      case TaskKind::PrioritySort:
        return "priority-sort";
      case TaskKind::BAbI:
        return "bAbI";
      case TaskKind::ShortestPath:
        return "shortest-path";
      case TaskKind::GraphTraversal:
        return "graph-traversal";
      case TaskKind::GraphInference:
        return "graph-inference";
      case TaskKind::MiniShrdlu:
        return "mini-shrdlu";
    }
    return "?";
}

namespace
{

Benchmark
make(const char *name, const char *description, TaskKind task,
     std::size_t memN, std::size_t memM, std::size_t ctrlLayers,
     std::size_t ctrlWidth, std::size_t readHeads,
     std::size_t writeHeads, std::size_t inputDim,
     std::size_t outputDim)
{
    Benchmark b;
    b.name = name;
    b.description = description;
    b.task = task;
    b.config.memN = memN;
    b.config.memM = memM;
    b.config.controllerLayers = ctrlLayers;
    b.config.controllerWidth = ctrlWidth;
    b.config.numReadHeads = readHeads;
    b.config.numWriteHeads = writeHeads;
    b.config.inputDim = inputDim;
    b.config.outputDim = outputDim;
    b.config.validate();
    return b;
}

} // namespace

const std::vector<Benchmark> &
table2Suite()
{
    // Shapes from Table 2 of the paper. Input/output widths are not
    // published; we pick task-appropriate values (they only size the
    // controller's first/last layers, <2% of runtime on every
    // benchmark).
    static const std::vector<Benchmark> suite = {
        make("copy", "copy a sequence of vectors through memory",
             TaskKind::Copy, 1024, 256, 1, 100, 1, 1, 18, 16),
        make("rptcopy", "copy a sequence a given number of times",
             TaskKind::RepeatCopy, 512, 512, 1, 100, 1, 1, 18, 17),
        make("recall",
             "recall the item following a queried key item",
             TaskKind::AssociativeRecall, 1024, 64, 1, 100, 1, 1, 18,
             16),
        make("ngrams",
             "model a dynamic n-gram distribution over bits",
             TaskKind::DynamicNgrams, 1024, 128, 1, 100, 1, 1, 2, 1),
        make("sort", "emit input vectors ordered by priority",
             TaskKind::PrioritySort, 512, 128, 2, 100, 1, 4, 24, 16),
        make("bAbI", "question answering with logical reasoning",
             TaskKind::BAbI, 4096, 1024, 1, 256, 4, 1, 64, 64),
        make("short", "find shortest paths in a labelled graph",
             TaskKind::ShortestPath, 3648, 1400, 2, 256, 5, 1, 96, 96),
        make("travers", "follow a path through a labelled graph",
             TaskKind::GraphTraversal, 5056, 1000, 3, 256, 5, 1, 96,
             96),
        make("inf", "infer implicit relations in a labelled graph",
             TaskKind::GraphInference, 3584, 1400, 3, 256, 5, 1, 96,
             96),
        make("shrdlu", "answer dialogue about a synthetic block world",
             TaskKind::MiniShrdlu, 1280, 4000, 2, 256, 3, 1, 64, 64),
    };
    return suite;
}

const Benchmark &
benchmarkByName(const std::string &name)
{
    for (const auto &b : table2Suite())
        if (b.name == name)
            return b;
    fatal("unknown benchmark '%s'", name.c_str());
}

Benchmark
weakScaled(const Benchmark &base, std::size_t tiles,
           std::size_t baselineTiles)
{
    MANNA_ASSERT(tiles >= baselineTiles && baselineTiles > 0,
                 "weakScaled(%zu, %zu) invalid", tiles, baselineTiles);
    const double factor = std::sqrt(static_cast<double>(tiles) /
                                    static_cast<double>(baselineTiles));
    Benchmark scaled = base;
    // Keep dimensions multiples of the tile count / buffer width so
    // partitioning stays even, as in the paper's doubling scheme.
    scaled.config.memN = roundUp(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(base.config.memN) *
                         factor)),
        tiles);
    scaled.config.memM = roundUp(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(base.config.memM) *
                         factor)),
        8);
    scaled.name = base.name;
    scaled.config.validate();
    return scaled;
}

Benchmark
tinyBenchmark()
{
    return make("tiny", "small configuration for tests and examples",
                TaskKind::Copy, 64, 32, 1, 40, 1, 1, 10, 8);
}

} // namespace manna::workloads
