#include "graph_gen.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace manna::workloads
{

LabelledGraph::LabelledGraph(std::size_t numNodes,
                             std::size_t extraEdges,
                             std::size_t numLabels, Rng &rng)
    : numNodes_(numNodes), numLabels_(numLabels),
      adjacency_(numNodes)
{
    MANNA_ASSERT(numNodes >= 2, "graph needs at least two nodes");
    MANNA_ASSERT(numLabels >= 1, "graph needs at least one label");

    auto addEdge = [&](std::uint32_t from, std::uint32_t to) {
        Edge e{from, to,
               static_cast<std::uint32_t>(rng.below(numLabels))};
        edges_.push_back(e);
        adjacency_[from].push_back(e);
        // Graph tasks treat connections as navigable both ways (the
        // Underground analogy); add the reverse edge with its own
        // label.
        Edge rev{to, from,
                 static_cast<std::uint32_t>(rng.below(numLabels))};
        edges_.push_back(rev);
        adjacency_[to].push_back(rev);
    };

    // Random spanning tree: connect node i to a random earlier node.
    for (std::uint32_t i = 1; i < numNodes; ++i)
        addEdge(static_cast<std::uint32_t>(rng.below(i)), i);

    for (std::size_t e = 0; e < extraEdges; ++e) {
        const auto a =
            static_cast<std::uint32_t>(rng.below(numNodes));
        auto b = static_cast<std::uint32_t>(rng.below(numNodes));
        if (a == b)
            b = (b + 1) % static_cast<std::uint32_t>(numNodes);
        addEdge(a, b);
    }
}

const std::vector<Edge> &
LabelledGraph::outEdges(std::uint32_t node) const
{
    MANNA_ASSERT(node < numNodes_, "node %u out of %zu", node,
                 numNodes_);
    return adjacency_[node];
}

std::vector<std::uint32_t>
LabelledGraph::shortestPath(std::uint32_t from, std::uint32_t to) const
{
    MANNA_ASSERT(from < numNodes_ && to < numNodes_,
                 "path endpoints out of range");
    std::vector<std::int64_t> parent(numNodes_, -1);
    std::deque<std::uint32_t> queue{from};
    parent[from] = from;
    while (!queue.empty()) {
        const std::uint32_t node = queue.front();
        queue.pop_front();
        if (node == to)
            break;
        for (const Edge &e : adjacency_[node]) {
            if (parent[e.to] < 0) {
                parent[e.to] = node;
                queue.push_back(e.to);
            }
        }
    }
    if (parent[to] < 0)
        return {};
    std::vector<std::uint32_t> path{to};
    while (path.back() != from)
        path.push_back(
            static_cast<std::uint32_t>(parent[path.back()]));
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<std::uint32_t>
LabelledGraph::followPath(
    std::uint32_t from, const std::vector<std::uint32_t> &labels) const
{
    std::vector<std::uint32_t> visited{from};
    std::uint32_t node = from;
    for (std::uint32_t label : labels) {
        bool moved = false;
        for (const Edge &e : adjacency_[node]) {
            if (e.label == label) {
                node = e.to;
                visited.push_back(node);
                moved = true;
                break;
            }
        }
        if (!moved)
            break;
    }
    return visited;
}

LabelledGraph::Walk
LabelledGraph::randomWalk(std::uint32_t from, std::size_t length,
                          Rng &rng) const
{
    Walk walk;
    walk.nodes.push_back(from);
    std::uint32_t node = from;
    for (std::size_t i = 0; i < length; ++i) {
        const auto &out = adjacency_[node];
        if (out.empty())
            break;
        const Edge &e = out[rng.below(out.size())];
        walk.labels.push_back(e.label);
        node = e.to;
        walk.nodes.push_back(node);
    }
    return walk;
}

bool
LabelledGraph::isConnected() const
{
    std::vector<bool> seen(numNodes_, false);
    std::deque<std::uint32_t> queue{0};
    seen[0] = true;
    std::size_t count = 1;
    while (!queue.empty()) {
        const std::uint32_t node = queue.front();
        queue.pop_front();
        for (const Edge &e : adjacency_[node]) {
            if (!seen[e.to]) {
                seen[e.to] = true;
                ++count;
                queue.push_back(e.to);
            }
        }
    }
    return count == numNodes_;
}

} // namespace manna::workloads
