#include "tasks.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"
#include "workloads/graph_gen.hh"

namespace manna::workloads
{

namespace
{

/** Random +-0/1 bit vector over the payload channels. */
FVec
randomBits(std::size_t dim, std::size_t payload, Rng &rng)
{
    FVec v(dim, 0.0f);
    for (std::size_t i = 0; i < payload && i < dim; ++i)
        v[i] = rng.below(2) ? 1.0f : 0.0f;
    return v;
}

/** One-hot-ish token embedded at a channel offset. */
FVec
token(std::size_t dim, std::size_t index, float value = 1.0f)
{
    FVec v(dim, 0.0f);
    v[index % dim] = value;
    return v;
}

} // namespace

Episode
copyEpisode(std::size_t inputDim, std::size_t items, Rng &rng)
{
    MANNA_ASSERT(inputDim >= 3, "copy needs >= 3 input channels");
    const std::size_t payload = inputDim - 2; // 2 delimiter channels
    Episode ep;
    for (std::size_t i = 0; i < items; ++i) {
        ep.inputs.push_back(randomBits(inputDim, payload, rng));
        ep.targets.emplace_back(); // no output during presentation
    }
    FVec delim(inputDim, 0.0f);
    delim[inputDim - 2] = 1.0f;
    ep.inputs.push_back(delim);
    ep.targets.emplace_back();
    for (std::size_t i = 0; i < items; ++i) {
        ep.inputs.push_back(FVec(inputDim, 0.0f));
        ep.targets.push_back(FVec(
            ep.inputs[i].begin(),
            ep.inputs[i].begin() + static_cast<std::ptrdiff_t>(payload)));
    }
    return ep;
}

Episode
repeatCopyEpisode(std::size_t inputDim, std::size_t items,
                  std::size_t repeats, Rng &rng)
{
    Episode ep = copyEpisode(inputDim, items, rng);
    // The delimiter step encodes the repeat count on its last channel.
    ep.inputs[items][inputDim - 1] = static_cast<float>(repeats);
    // Extend the recall phase to `repeats` copies.
    const std::size_t payload = inputDim - 2;
    for (std::size_t r = 1; r < repeats; ++r) {
        for (std::size_t i = 0; i < items; ++i) {
            ep.inputs.push_back(FVec(inputDim, 0.0f));
            ep.targets.push_back(
                FVec(ep.inputs[i].begin(),
                     ep.inputs[i].begin() +
                         static_cast<std::ptrdiff_t>(payload)));
        }
    }
    return ep;
}

Episode
associativeRecallEpisode(std::size_t inputDim, std::size_t pairs,
                         Rng &rng)
{
    MANNA_ASSERT(pairs >= 2, "associative recall needs >= 2 items");
    const std::size_t payload = inputDim - 2;
    Episode ep;
    std::vector<FVec> presented;
    for (std::size_t i = 0; i < pairs; ++i) {
        FVec item = randomBits(inputDim, payload, rng);
        presented.push_back(item);
        ep.inputs.push_back(item);
        ep.targets.emplace_back();
    }
    // Query: re-present a random non-final item; the target is its
    // successor.
    const std::size_t q = rng.below(pairs - 1);
    FVec query = presented[q];
    query[inputDim - 2] = 1.0f; // query marker
    ep.inputs.push_back(query);
    ep.targets.emplace_back();
    ep.inputs.push_back(FVec(inputDim, 0.0f));
    ep.targets.push_back(
        FVec(presented[q + 1].begin(),
             presented[q + 1].begin() +
                 static_cast<std::ptrdiff_t>(payload)));
    return ep;
}

Episode
ngramsEpisode(std::size_t steps, Rng &rng)
{
    // A random table over 2-bit contexts drives the source; the
    // model must track the dynamic distribution.
    double table[4];
    for (auto &p : table)
        p = rng.uniform(0.1, 0.9);
    Episode ep;
    std::uint32_t context = 0;
    for (std::size_t i = 0; i < steps; ++i) {
        const float bit =
            rng.uniform() < table[context & 3] ? 1.0f : 0.0f;
        FVec in(2, 0.0f);
        in[0] = bit;
        in[1] = 1.0f; // valid marker
        ep.inputs.push_back(in);
        ep.targets.push_back(FVec{bit});
        context = ((context << 1) | (bit > 0.5f ? 1u : 0u)) & 3u;
    }
    return ep;
}

Episode
prioritySortEpisode(std::size_t inputDim, std::size_t items, Rng &rng)
{
    MANNA_ASSERT(inputDim >= 10, "priority sort needs >= 10 channels");
    const std::size_t payload = inputDim - 2;
    Episode ep;
    std::vector<std::pair<float, FVec>> entries;
    for (std::size_t i = 0; i < items; ++i) {
        FVec v = randomBits(inputDim, payload, rng);
        const float priority =
            static_cast<float>(rng.uniform(-1.0, 1.0));
        v[inputDim - 1] = priority;
        entries.emplace_back(priority, v);
        ep.inputs.push_back(v);
        ep.targets.emplace_back();
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    FVec delim(inputDim, 0.0f);
    delim[inputDim - 2] = 1.0f;
    ep.inputs.push_back(delim);
    ep.targets.emplace_back();
    for (std::size_t i = 0; i < items; ++i) {
        ep.inputs.push_back(FVec(inputDim, 0.0f));
        ep.targets.push_back(
            FVec(entries[i].second.begin(),
                 entries[i].second.begin() +
                     static_cast<std::ptrdiff_t>(payload)));
    }
    return ep;
}

Episode
babiEpisode(std::size_t inputDim, std::size_t facts,
            std::size_t queries, Rng &rng)
{
    // Facts are (entity, relation, entity) triples over a small
    // vocabulary, encoded as three scaled one-hots per step.
    const std::size_t third = inputDim / 3;
    MANNA_ASSERT(third >= 2, "bAbI needs >= 6 input channels");
    Episode ep;
    std::vector<std::array<std::size_t, 3>> knowledge;
    for (std::size_t f = 0; f < facts; ++f) {
        const std::size_t s = rng.below(third);
        const std::size_t r = rng.below(third);
        const std::size_t o = rng.below(third);
        knowledge.push_back({s, r, o});
        FVec in(inputDim, 0.0f);
        in[s] = 1.0f;
        in[third + r] = 1.0f;
        in[2 * third + o] = 1.0f;
        ep.inputs.push_back(in);
        ep.targets.emplace_back();
    }
    for (std::size_t q = 0; q < queries; ++q) {
        const auto &fact = knowledge[rng.below(knowledge.size())];
        FVec in(inputDim, 0.0f);
        in[fact[0]] = -1.0f; // negative marks a query
        in[third + fact[1]] = -1.0f;
        ep.inputs.push_back(in);
        ep.targets.push_back(token(inputDim, 2 * third + fact[2]));
    }
    return ep;
}

Episode
graphEpisode(TaskKind kind, std::size_t inputDim, std::size_t steps,
             Rng &rng)
{
    const std::size_t third = inputDim / 3;
    MANNA_ASSERT(third >= 4, "graph tasks need >= 12 input channels");
    const std::size_t numNodes = std::max<std::size_t>(steps / 2, 8);
    LabelledGraph graph(numNodes, numNodes / 2, /*numLabels=*/8, rng);

    Episode ep;
    auto encodeTriple = [&](std::size_t a, std::size_t b,
                            std::size_t c, float sign) {
        FVec in(inputDim, 0.0f);
        in[a % third] = sign;
        in[third + (b % third)] = sign;
        in[2 * third + (c % third)] = sign;
        return in;
    };

    // Phase 1: stream the edge list (one edge per step, capped).
    const std::size_t edgeSteps =
        std::min(graph.edges().size(), steps * 2 / 3);
    for (std::size_t e = 0; e < edgeSteps; ++e) {
        const Edge &edge = graph.edges()[e];
        ep.inputs.push_back(
            encodeTriple(edge.from, edge.label, edge.to, 1.0f));
        ep.targets.emplace_back();
    }

    // Phase 2: queries with exact answers from the graph algorithms.
    const std::size_t querySteps = steps - std::min(steps, edgeSteps);
    for (std::size_t q = 0; q < querySteps; ++q) {
        switch (kind) {
          case TaskKind::GraphTraversal: {
            const auto start = static_cast<std::uint32_t>(
                rng.below(graph.numNodes()));
            const auto walk = graph.randomWalk(start, 3, rng);
            ep.inputs.push_back(encodeTriple(
                start, walk.labels.empty() ? 0 : walk.labels[0],
                0, -1.0f));
            ep.targets.push_back(
                token(inputDim, walk.nodes.back() % third));
            break;
          }
          case TaskKind::ShortestPath: {
            const auto from = static_cast<std::uint32_t>(
                rng.below(graph.numNodes()));
            const auto to = static_cast<std::uint32_t>(
                rng.below(graph.numNodes()));
            ep.inputs.push_back(encodeTriple(from, 0, to, -1.0f));
            const auto path = graph.shortestPath(from, to);
            ep.targets.push_back(token(
                inputDim, path.size() > 1 ? path[1] % third : from));
            break;
          }
          default: { // GraphInference
            const auto start = static_cast<std::uint32_t>(
                rng.below(graph.numNodes()));
            const auto walk = graph.randomWalk(start, 2, rng);
            ep.inputs.push_back(encodeTriple(
                start, walk.labels.empty() ? 0 : walk.labels[0],
                walk.labels.size() > 1 ? walk.labels[1] : 0, -1.0f));
            ep.targets.push_back(
                token(inputDim, walk.nodes.back() % third));
            break;
          }
        }
    }
    return ep;
}

Episode
shrdluEpisode(std::size_t inputDim, std::size_t steps, Rng &rng)
{
    // A board of stacks of numbered blocks; inputs alternate between
    // "place block b on stack s" commands and "where is block b?"
    // queries; answers name the stack.
    const std::size_t numBlocks = 9;
    const std::size_t numStacks = 3;
    std::vector<std::size_t> location(numBlocks);
    for (std::size_t b = 0; b < numBlocks; ++b)
        location[b] = rng.below(numStacks);

    Episode ep;
    for (std::size_t i = 0; i < steps; ++i) {
        const std::size_t b = rng.below(numBlocks);
        FVec in(inputDim, 0.0f);
        if (i % 3 == 2) {
            // Query.
            in[b] = -1.0f;
            ep.inputs.push_back(in);
            ep.targets.push_back(
                token(inputDim, numBlocks + location[b]));
        } else {
            // Move command.
            const std::size_t s = rng.below(numStacks);
            location[b] = s;
            in[b] = 1.0f;
            in[numBlocks + s] = 1.0f;
            ep.inputs.push_back(in);
            ep.targets.emplace_back();
        }
    }
    return ep;
}

Episode
generateEpisode(const Benchmark &benchmark, std::size_t steps,
                Rng &rng)
{
    const std::size_t dim = benchmark.config.inputDim;
    Episode ep;
    switch (benchmark.task) {
      case TaskKind::Copy:
        ep = copyEpisode(dim, std::max<std::size_t>(steps / 2, 1), rng);
        break;
      case TaskKind::RepeatCopy:
        ep = repeatCopyEpisode(
            dim, std::max<std::size_t>(steps / 4, 1), 3, rng);
        break;
      case TaskKind::AssociativeRecall:
        // max(steps, 4) before subtracting: a plain steps - 2 would
        // wrap for steps < 2 and ask for ~2^64 items.
        ep = associativeRecallEpisode(
            dim, std::max<std::size_t>(steps, 4) - 2, rng);
        break;
      case TaskKind::DynamicNgrams:
        ep = ngramsEpisode(steps, rng);
        break;
      case TaskKind::PrioritySort:
        ep = prioritySortEpisode(
            dim, std::max<std::size_t>(steps / 2, 2), rng);
        break;
      case TaskKind::BAbI: {
        // At least one fact (queries sample from the fact set) and
        // one query, so tiny smoke-test step counts stay valid.
        const std::size_t facts =
            std::max<std::size_t>(steps * 3 / 4, 1);
        const std::size_t queries =
            steps > facts ? steps - facts : 1;
        ep = babiEpisode(dim, facts, queries, rng);
        break;
      }
      case TaskKind::ShortestPath:
      case TaskKind::GraphTraversal:
      case TaskKind::GraphInference:
        ep = graphEpisode(benchmark.task, dim, steps, rng);
        break;
      case TaskKind::MiniShrdlu:
        ep = shrdluEpisode(dim, steps, rng);
        break;
    }
    MANNA_ASSERT(ep.inputs.size() == ep.targets.size(),
                 "episode inputs/targets misaligned: %zu vs %zu",
                 ep.inputs.size(), ep.targets.size());
    for (const auto &in : ep.inputs)
        MANNA_ASSERT(in.size() == dim,
                     "episode input width %zu != %zu", in.size(), dim);
    return ep;
}

} // namespace manna::workloads
