/**
 * @file
 * The paper's benchmark suite (Table 2): ten NTM/DNC-style tasks with
 * the published differentiable-memory shapes, controller dimensions,
 * and head counts. The suite is "scaled up from the original works to
 * reflect the size of the external memory needed for real-world
 * applications" — we use the published scaled shapes exactly.
 */

#ifndef MANNA_WORKLOADS_BENCHMARKS_HH
#define MANNA_WORKLOADS_BENCHMARKS_HH

#include <string>
#include <vector>

#include "mann/mann_config.hh"

namespace manna::workloads
{

/** Task family (drives the input generator). */
enum class TaskKind
{
    Copy,
    RepeatCopy,
    AssociativeRecall,
    DynamicNgrams,
    PrioritySort,
    BAbI,
    ShortestPath,
    GraphTraversal,
    GraphInference,
    MiniShrdlu,
};

const char *toString(TaskKind kind);

/** One benchmark: a MANN shape plus its task generator binding. */
struct Benchmark
{
    std::string name;      ///< short name used in the paper's figures
    std::string description;
    TaskKind task;
    mann::MannConfig config;

    /** Default sequence length used by the experiment harness. */
    std::size_t defaultSteps = 32;
};

/** The full Table 2 suite, ordered by external memory size as in
 * Figure 9 (copy, rptcopy, recall, ngrams, sort, bAbI, short,
 * travers, inf, shrdlu -- the paper orders plots by size). */
const std::vector<Benchmark> &table2Suite();

/** Look up a benchmark by name; fatal() if unknown. */
const Benchmark &benchmarkByName(const std::string &name);

/**
 * Weak-scaling variant (Section 7.3 / Figure 13): scale both memory
 * dimensions by sqrt(tiles / baselineTiles) so the problem grows
 * proportionally to the tile count.
 */
Benchmark weakScaled(const Benchmark &base, std::size_t tiles,
                     std::size_t baselineTiles = 4);

/** A small configuration for fast tests and the quickstart example. */
Benchmark tinyBenchmark();

} // namespace manna::workloads

#endif // MANNA_WORKLOADS_BENCHMARKS_HH
