/**
 * @file
 * Random labelled-graph substrate for the DNC-style graph tasks
 * (shortest path, traversal, inference). The paper's benchmarks are
 * modelled on the DNC's London Underground and family-tree
 * experiments; we substitute reproducible random graphs with the same
 * structure: labelled nodes, labelled edges, and query/answer pairs
 * derived by exact graph algorithms (BFS shortest paths, path
 * following, relation composition).
 */

#ifndef MANNA_WORKLOADS_GRAPH_GEN_HH
#define MANNA_WORKLOADS_GRAPH_GEN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace manna::workloads
{

/** A directed edge with a relation label. */
struct Edge
{
    std::uint32_t from;
    std::uint32_t to;
    std::uint32_t label;
};

/** A random connected, labelled directed graph. */
class LabelledGraph
{
  public:
    /**
     * Generate a connected graph: a random spanning tree plus
     * `extraEdges` additional random edges, all labelled uniformly
     * from `numLabels`.
     */
    LabelledGraph(std::size_t numNodes, std::size_t extraEdges,
                  std::size_t numLabels, Rng &rng);

    std::size_t numNodes() const { return numNodes_; }
    std::size_t numLabels() const { return numLabels_; }
    const std::vector<Edge> &edges() const { return edges_; }

    /** Outgoing edges of a node. */
    const std::vector<Edge> &outEdges(std::uint32_t node) const;

    /** BFS shortest path (node sequence); empty if unreachable. */
    std::vector<std::uint32_t> shortestPath(std::uint32_t from,
                                            std::uint32_t to) const;

    /**
     * Follow a sequence of edge labels from a start node; returns the
     * node sequence actually visited (stops early if no matching
     * edge).
     */
    std::vector<std::uint32_t>
    followPath(std::uint32_t from,
               const std::vector<std::uint32_t> &labels) const;

    /** A random walk of the requested length (labels taken). */
    struct Walk
    {
        std::vector<std::uint32_t> nodes;
        std::vector<std::uint32_t> labels;
    };
    Walk randomWalk(std::uint32_t from, std::size_t length,
                    Rng &rng) const;

    /** True if every node is reachable from node 0. */
    bool isConnected() const;

  private:
    std::size_t numNodes_;
    std::size_t numLabels_;
    std::vector<Edge> edges_;
    std::vector<std::vector<Edge>> adjacency_;
};

} // namespace manna::workloads

#endif // MANNA_WORKLOADS_GRAPH_GEN_HH
