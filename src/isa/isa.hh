/**
 * @file
 * Manna instruction set architecture (Section 5.1).
 *
 * The ISA has three instruction classes:
 *  - control: loop / end-loop bracket the block loop; operand address
 *    generation is expressed through per-loop-level strides attached
 *    to every operand (the paper's addr-gen);
 *  - compute: coarse-grained kernels primitives (DMA transfers, the
 *    two vector-matrix directions, element-wise ops, SFU ops);
 *  - communication: reduce and broadcast across all tiles, which
 *    double as synchronization fences.
 *
 * An operand names a region of one of the tile's memory spaces. The
 * effective base address of an operand inside nested loops is
 *   base + sum_over_active_loops(iter[l] * stride[l])
 * where level 0 is the outermost active loop. Operands of length 1
 * are treated as scalar broadcasts by the element-wise ops.
 */

#ifndef MANNA_ISA_ISA_HH
#define MANNA_ISA_ISA_HH

#include <cstdint>
#include <string>

namespace manna::isa
{

/** Maximum loop nesting depth supported by operand address
 * generation. */
constexpr std::size_t kMaxLoopDepth = 3;

/** Tile-local memory spaces an operand can name. */
enum class Space : std::uint8_t
{
    None = 0, ///< operand unused
    MatBuf,   ///< Matrix-Buffer (large, per-tile)
    MatSpad,  ///< Matrix-Scratchpad (double buffered, banked)
    VecBuf,   ///< Vector-Buffer
    VecSpad,  ///< Vector-Scratchpad (double buffered)
};

const char *toString(Space s);

/** Opcodes. */
enum class Opcode : std::uint8_t
{
    Nop = 0,
    Halt,

    // Control.
    Loop,    ///< begin a loop of `count` iterations
    EndLoop, ///< close the innermost loop

    // Data movement (DMA / DMAT engines). The matrix transfers are
    // two-dimensional: `count` rows of (dst.len / count) words each
    // (for DmatLoadM the destination pitch is one word wider than the
    // row, i.e. dst.len = count * (rowWords + 1)); srcA.base is the
    // source start and srcB.base carries the source row pitch in
    // words.
    DmaLoadM,   ///< Matrix-Buffer -> Matrix-Scratchpad, row order
    DmatLoadM,  ///< same transfer, skew-padded for transposed access
    DmaStoreM,  ///< Matrix-Scratchpad -> Matrix-Buffer (2D, as above)
    DmaLoadV,   ///< Vector-Buffer -> Vector-Scratchpad (1D)
    DmaStoreV,  ///< Vector-Scratchpad -> Vector-Buffer (1D)

    // eMAC compute.
    Vmm,      ///< vector-matrix multiply over a scratchpad block
    EwAdd,    ///< dst = a + b
    EwSub,    ///< dst = a - b
    EwMul,    ///< dst = a * b
    EwMac,    ///< dst += a * b
    EwAddImm, ///< dst = a + imm
    EwMulImm, ///< dst = a * imm
    EwRsubImm,///< dst = imm - a
    Fill,     ///< dst = imm

    // SFU compute (serial).
    SfuExp,      ///< dst = exp(a)
    SfuPow,      ///< dst = a ^ b[0] (b is a scalar operand)
    SfuRecip,    ///< dst = 1 / a
    SfuSqrt,     ///< dst = sqrt(a)
    SfuSigmoid,  ///< dst = sigmoid(a)
    SfuTanh,     ///< dst = tanh(a)
    SfuSoftplus, ///< dst = log(1 + exp(a))
    SfuAccSum,   ///< dst[0] = sum(a)
    SfuAccMax,   ///< dst[0] = max(a)

    // Communication (also fences).
    Reduce,    ///< element-wise reduce of src across all tiles
    Broadcast, ///< broadcast root's src to every tile's dst

    NumOpcodes,
};

const char *toString(Opcode op);

/**
 * Opcode name as a single counter-key component: the dotted mnemonic
 * with dots replaced by underscores ("dma.load.m" -> "dma_load_m").
 * Used for the per-opcode `profile.<tile>.<opcode>.*` registry keys
 * (docs/OBSERVABILITY.md).
 */
std::string profileKey(Opcode op);

/** Reduction operators for Reduce. */
enum class ReduceOp : std::uint8_t
{
    Sum = 0,
    Max,
};

const char *toString(ReduceOp op);

/** One operand: a (possibly loop-strided) region of a memory space. */
struct Operand
{
    Space space = Space::None;
    std::uint32_t base = 0; ///< word address within the space
    std::int32_t stride[kMaxLoopDepth] = {0, 0, 0}; ///< words/iter
    std::uint32_t len = 0;  ///< element count

    bool valid() const { return space != Space::None; }

    /** A scalar operand broadcasts its single element. */
    bool isScalarBroadcast() const { return len == 1; }

    /** Effective base for the given loop iteration counters. */
    std::uint32_t effectiveBase(const std::int64_t iters[kMaxLoopDepth],
                                std::size_t depth) const;

    std::string toString() const;

    bool operator==(const Operand &) const = default;
};

/** Convenience constructors. */
Operand makeOperand(Space space, std::uint32_t base, std::uint32_t len);
Operand makeStridedOperand(Space space, std::uint32_t base,
                           std::uint32_t len, std::int32_t stride0,
                           std::int32_t stride1 = 0,
                           std::int32_t stride2 = 0);

/** Instruction flags. */
struct Flags
{
    /**
     * Vmm: row-dot mode (key-similarity direction, each lane owns a
     * matrix *row*; requires a DMAT-loaded block for conflict-free
     * banking). When false, Vmm runs in column-accumulate mode (the
     * soft-read direction).
     */
    bool rowDot = false;

    /** Vmm: accumulate into dst instead of overwriting. */
    bool accumulate = false;

    /** Vmm row-dot: also accumulate per-row squared norms into the
     * second half of dst (used by key similarity). */
    bool withNorms = false;

    /**
     * Vmm: the matrix block (srcB) is already resident from a prior
     * Vmm over the same block (multi-head reuse); no scratchpad read
     * energy is charged for it.
     */
    bool reuseB = false;

    /**
     * Vmm row-dot: the block was loaded via DmatLoadM and is skew
     * padded (row pitch = rowWords + 1), so banked access is
     * conflict-free.
     */
    bool skewed = false;

    /**
     * Vmm: the destination partial sums stay resident in the eMAC
     * register files across this instruction (output-stationary block
     * loop); no destination traffic is charged. The compiler sets
     * this on all but the final block of an output-stationary group.
     */
    bool dstResident = false;

    /** Reduce: combining operator. */
    ReduceOp reduceOp = ReduceOp::Sum;

    bool operator==(const Flags &) const = default;
};

/**
 * One Manna instruction.
 *
 * `dst`, `srcA`, `srcB` usage varies by opcode; see the simulator's
 * interpreter for the definitive semantics of each.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Operand dst;
    Operand srcA;
    Operand srcB;
    float imm = 0.0f;
    std::uint32_t count = 0; ///< Loop iteration count
    Flags flags;

    std::string toString() const;

    bool operator==(const Instruction &) const = default;
};

/** Fixed-size binary encoding (96 bytes per instruction: a 16-byte
 * header plus three 24-byte operands, padded). */
constexpr std::size_t kEncodedBytes = 96;

/** Encode to exactly kEncodedBytes bytes appended to @p out. */
void encode(const Instruction &inst, std::string &out);

/**
 * Decode one instruction from @p data at @p offset. Returns false on
 * truncated input or malformed fields.
 */
bool decode(const std::string &data, std::size_t offset,
            Instruction &inst);

} // namespace manna::isa

#endif // MANNA_ISA_ISA_HH
