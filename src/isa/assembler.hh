/**
 * @file
 * Textual assembler/disassembler for the Manna ISA. The text format
 * is exactly what Instruction::toString() and Program::disassemble()
 * emit, so assemble(disassemble(p)) == p. Useful for tests, the
 * compiler-explorer example, and debugging compiled kernels.
 */

#ifndef MANNA_ISA_ASSEMBLER_HH
#define MANNA_ISA_ASSEMBLER_HH

#include <optional>
#include <string>

#include "isa/program.hh"

namespace manna::isa
{

/** Result of an assembly attempt. */
struct AssembleResult
{
    Program program;
    std::string error; ///< empty on success
    std::size_t errorLine = 0;

    bool ok() const { return error.empty(); }
};

/**
 * Parse assembly text into a Program. Blank lines and lines starting
 * with '#' or ';' are ignored; leading indentation is ignored.
 */
AssembleResult assemble(const std::string &text);

/** Parse a single instruction line (no comments/blank allowed). */
std::optional<Instruction> parseInstruction(const std::string &line,
                                            std::string &error);

} // namespace manna::isa

#endif // MANNA_ISA_ASSEMBLER_HH
