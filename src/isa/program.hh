/**
 * @file
 * Container for one tile's instruction stream, with structural
 * validation (balanced loops, nesting depth, instruction-memory
 * capacity) and (dis)assembly entry points.
 */

#ifndef MANNA_ISA_PROGRAM_HH
#define MANNA_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/isa.hh"

namespace manna::isa
{

/**
 * A per-tile program: a flat instruction vector executed top to
 * bottom, with Loop/EndLoop brackets interpreted by the tile.
 */
class Program
{
  public:
    Program() = default;

    void append(Instruction inst) { insts_.push_back(std::move(inst)); }

    /** Append a Loop header with the given trip count. */
    void beginLoop(std::uint32_t count);

    /** Append the matching EndLoop. */
    void endLoop();

    const std::vector<Instruction> &instructions() const
    {
        return insts_;
    }
    std::vector<Instruction> &instructions() { return insts_; }

    std::size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    /**
     * Structural validation: loops balanced, nesting within
     * kMaxLoopDepth, loop counts nonzero, Halt (if present) last.
     * Returns an empty string when valid, else a diagnostic.
     */
    std::string validate() const;

    /** Total dynamic instruction count after loop expansion. */
    std::uint64_t dynamicLength() const;

    /** Disassemble to text, one instruction per line, loops indented. */
    std::string disassemble() const;

    /** Binary serialization (concatenated fixed-size encodings). */
    std::string serialize() const;

    /** Parse a binary serialization; returns false on malformed
     * input. */
    static bool deserialize(const std::string &data, Program &out);

  private:
    std::vector<Instruction> insts_;
};

} // namespace manna::isa

#endif // MANNA_ISA_PROGRAM_HH
