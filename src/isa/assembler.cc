#include "assembler.hh"

#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::isa
{

namespace
{

/** Opcode mnemonic lookup, built once from toString(). */
const std::map<std::string, Opcode> &
mnemonicTable()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(Opcode::NumOpcodes); ++i) {
            const Opcode op = static_cast<Opcode>(i);
            t[toString(op)] = op;
        }
        return t;
    }();
    return table;
}

const std::map<std::string, Space> &
spaceTable()
{
    static const std::map<std::string, Space> table = {
        {"mbuf", Space::MatBuf},
        {"mspad", Space::MatSpad},
        {"vbuf", Space::VecBuf},
        {"vspad", Space::VecSpad},
    };
    return table;
}

/** Parse "space[base:len]" or "space[base:len,s0,s1,s2]". */
bool
parseOperand(const std::string &text, Operand &out, std::string &error)
{
    const auto bracket = text.find('[');
    if (bracket == std::string::npos || text.back() != ']') {
        error = "operand '" + text + "' missing [base:len]";
        return false;
    }
    const std::string spaceName = text.substr(0, bracket);
    auto spaceIt = spaceTable().find(spaceName);
    if (spaceIt == spaceTable().end()) {
        error = "unknown memory space '" + spaceName + "'";
        return false;
    }
    const std::string inner =
        text.substr(bracket + 1, text.size() - bracket - 2);
    const auto parts = split(inner, ',');
    if (parts.empty() || parts.size() > 1 + kMaxLoopDepth) {
        error = "operand '" + text + "' has bad field count";
        return false;
    }
    const auto baseLen = split(parts[0], ':');
    if (baseLen.size() != 2) {
        error = "operand '" + text + "' missing base:len";
        return false;
    }
    const auto base = parseInt(baseLen[0]);
    const auto len = parseInt(baseLen[1]);
    if (!base || !len || *base < 0 || *len < 0) {
        error = "operand '" + text + "' has non-numeric base/len";
        return false;
    }
    Operand op;
    op.space = spaceIt->second;
    op.base = static_cast<std::uint32_t>(*base);
    op.len = static_cast<std::uint32_t>(*len);
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const auto s = parseInt(parts[i]);
        if (!s) {
            error = "operand '" + text + "' has non-numeric stride";
            return false;
        }
        op.stride[i - 1] = static_cast<std::int32_t>(*s);
    }
    out = op;
    return true;
}

} // namespace

std::optional<Instruction>
parseInstruction(const std::string &line, std::string &error)
{
    const auto tokens = splitWhitespace(line);
    if (tokens.empty()) {
        error = "empty instruction";
        return std::nullopt;
    }

    // Mnemonic with optional dot-suffixes (vmm.rowdot.acc,
    // reduce.sum, ...). Match the longest known prefix.
    std::string mnemonic = tokens[0];
    Instruction inst;
    std::vector<std::string> suffixes;
    while (true) {
        auto it = mnemonicTable().find(mnemonic);
        if (it != mnemonicTable().end()) {
            inst.op = it->second;
            break;
        }
        const auto dot = mnemonic.rfind('.');
        if (dot == std::string::npos) {
            error = "unknown mnemonic '" + tokens[0] + "'";
            return std::nullopt;
        }
        suffixes.push_back(mnemonic.substr(dot + 1));
        mnemonic = mnemonic.substr(0, dot);
    }
    for (const auto &sfx : suffixes) {
        if (sfx == "rowdot")
            inst.flags.rowDot = true;
        else if (sfx == "acc")
            inst.flags.accumulate = true;
        else if (sfx == "norms")
            inst.flags.withNorms = true;
        else if (sfx == "reuse")
            inst.flags.reuseB = true;
        else if (sfx == "skew")
            inst.flags.skewed = true;
        else if (sfx == "res")
            inst.flags.dstResident = true;
        else if (sfx == "sum")
            inst.flags.reduceOp = ReduceOp::Sum;
        else if (sfx == "max")
            inst.flags.reduceOp = ReduceOp::Max;
        else {
            error = "unknown suffix '." + sfx + "'";
            return std::nullopt;
        }
    }

    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        if (inst.op == Opcode::Loop && i == 1) {
            const auto count = parseInt(tok);
            if (!count || *count <= 0) {
                error = "loop needs a positive count";
                return std::nullopt;
            }
            inst.count = static_cast<std::uint32_t>(*count);
            continue;
        }
        const auto eq = tok.find('=');
        if (eq == std::string::npos) {
            error = "unexpected token '" + tok + "'";
            return std::nullopt;
        }
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        if (key == "rows" || key == "off" || key == "tag") {
            const auto v = parseInt(value);
            if (!v || *v < 0) {
                error = "bad " + key + " '" + value + "'";
                return std::nullopt;
            }
            inst.count = static_cast<std::uint32_t>(*v);
        } else if (key == "pitch") {
            const auto v = parseInt(value);
            if (!v || *v < 0) {
                error = "bad pitch '" + value + "'";
                return std::nullopt;
            }
            inst.srcB.base = static_cast<std::uint32_t>(*v);
        } else if (key == "imm") {
            const auto v = parseDouble(value);
            if (!v) {
                error = "bad immediate '" + value + "'";
                return std::nullopt;
            }
            inst.imm = static_cast<float>(*v);
        } else if (key == "d" || key == "a" || key == "b") {
            Operand op;
            if (!parseOperand(value, op, error))
                return std::nullopt;
            if (key == "d")
                inst.dst = op;
            else if (key == "a")
                inst.srcA = op;
            else
                inst.srcB = op;
        } else {
            error = "unknown field '" + key + "'";
            return std::nullopt;
        }
    }
    return inst;
}

AssembleResult
assemble(const std::string &text)
{
    AssembleResult result;
    const auto lines = split(text, '\n');
    for (std::size_t n = 0; n < lines.size(); ++n) {
        const std::string line = trim(lines[n]);
        if (line.empty() || line[0] == '#' || line[0] == ';')
            continue;
        std::string error;
        auto inst = parseInstruction(line, error);
        if (!inst) {
            result.error = error;
            result.errorLine = n + 1;
            return result;
        }
        result.program.append(*inst);
    }
    const std::string structural = result.program.validate();
    if (!structural.empty()) {
        result.error = structural;
        result.errorLine = 0;
    }
    return result;
}

} // namespace manna::isa
