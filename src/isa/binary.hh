/**
 * @file
 * Versioned binary container for an isa::Program — the on-disk
 * "Manna program" format (docs/FORMATS.md, docs/ISA.md "Binary
 * encoding"). A 40-byte header (magic, version, geometry, FNV-1a
 * payload checksum) is followed by the fixed-size per-instruction
 * records of isa::encode(). The encoding is byte-deterministic
 * (explicit little-endian field order, zero padding) and
 * decodeProgram(encodeProgram(p)) is structurally identical to p for
 * every valid program; any single-bit corruption of a container is
 * rejected (header fields are validated exactly and the checksum
 * covers the whole payload).
 */

#ifndef MANNA_ISA_BINARY_HH
#define MANNA_ISA_BINARY_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace manna::isa
{

/** Container magic: the first four bytes of every encoded program. */
constexpr char kProgramMagic[4] = {'M', 'N', 'P', 'R'};

/** Current container version (header field 1). */
constexpr std::uint32_t kProgramVersion = 1;

/** Header size in bytes (fixed for version 1). */
constexpr std::size_t kProgramHeaderBytes = 40;

/** Encode @p program into a self-contained binary container. */
std::string encodeProgram(const Program &program);

/**
 * Decode a binary container produced by encodeProgram(). Returns
 * true and fills @p out on success; on failure returns false and, if
 * @p error is non-null, stores a one-line diagnostic (bad magic,
 * unsupported version, truncation, checksum mismatch, malformed
 * instruction record, or structural invalidity per
 * Program::validate()).
 */
bool decodeProgram(const std::string &data, Program &out,
                   std::string *error = nullptr);

/** True when @p data begins with the program-container magic. */
bool looksLikeProgram(const std::string &data);

/** Per-opcode static instruction counts of a program (indexed by
 * Opcode value; used by manna-objdump's histogram). */
std::array<std::uint64_t, static_cast<std::size_t>(Opcode::NumOpcodes)>
opcodeHistogram(const Program &program);

/**
 * Canonical hexdump of a byte range: 16 bytes per line as
 * "OFFSET  XX XX .. XX  |ascii|" (non-printable bytes render as
 * '.'). Used by manna-objdump and the docs' worked example.
 */
std::string hexdump(const std::string &data, std::size_t offset = 0,
                    std::size_t length = std::string::npos);

} // namespace manna::isa

#endif // MANNA_ISA_BINARY_HH
