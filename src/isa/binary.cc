#include "binary.hh"

#include <cctype>
#include <cstring>

#include "common/hash.hh"
#include "common/strutil.hh"

namespace manna::isa
{

namespace
{

void
put32le(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void
put64le(std::string &out, std::uint64_t v)
{
    put32le(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    put32le(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
get32le(const std::string &data, std::size_t off)
{
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(data[off + i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint64_t
get64le(const std::string &data, std::size_t off)
{
    return static_cast<std::uint64_t>(get32le(data, off)) |
           (static_cast<std::uint64_t>(get32le(data, off + 4)) << 32);
}

bool
fail(std::string *error, const char *what)
{
    if (error)
        *error = what;
    return false;
}

} // namespace

std::string
encodeProgram(const Program &program)
{
    // Payload first: the checksum rides in the header.
    std::string payload;
    payload.reserve(program.size() * kEncodedBytes);
    for (const Instruction &inst : program.instructions())
        encode(inst, payload);

    std::string out;
    out.reserve(kProgramHeaderBytes + payload.size());
    out.append(kProgramMagic, sizeof(kProgramMagic));
    put32le(out, kProgramVersion);
    put32le(out, static_cast<std::uint32_t>(kProgramHeaderBytes));
    put32le(out, static_cast<std::uint32_t>(kEncodedBytes));
    put32le(out, static_cast<std::uint32_t>(kMaxLoopDepth));
    put32le(out, static_cast<std::uint32_t>(program.size()));
    put64le(out, 0); // reserved, must be zero
    put64le(out, Fnv1a().bytes(payload.data(), payload.size()).value());
    out += payload;
    return out;
}

bool
decodeProgram(const std::string &data, Program &out, std::string *error)
{
    if (data.size() < kProgramHeaderBytes)
        return fail(error, "truncated header");
    if (std::memcmp(data.data(), kProgramMagic,
                    sizeof(kProgramMagic)) != 0)
        return fail(error, "bad magic (not a Manna program)");
    if (get32le(data, 4) != kProgramVersion)
        return fail(error, "unsupported container version");
    if (get32le(data, 8) != kProgramHeaderBytes)
        return fail(error, "bad header size");
    if (get32le(data, 12) != kEncodedBytes)
        return fail(error, "bad instruction record size");
    if (get32le(data, 16) != kMaxLoopDepth)
        return fail(error, "bad loop-depth limit");
    const std::uint32_t count = get32le(data, 20);
    if (get64le(data, 24) != 0)
        return fail(error, "nonzero reserved field");
    if (data.size() != kProgramHeaderBytes +
                           static_cast<std::size_t>(count) *
                               kEncodedBytes)
        return fail(error, "payload size does not match count");

    const std::uint64_t want = get64le(data, 32);
    const std::uint64_t got =
        Fnv1a()
            .bytes(data.data() + kProgramHeaderBytes,
                   data.size() - kProgramHeaderBytes)
            .value();
    if (want != got)
        return fail(error, "payload checksum mismatch");

    Program prog;
    for (std::uint32_t i = 0; i < count; ++i) {
        Instruction inst;
        if (!decode(data, kProgramHeaderBytes +
                              static_cast<std::size_t>(i) *
                                  kEncodedBytes,
                    inst)) {
            if (error)
                *error = strformat(
                    "malformed instruction record %u", i);
            return false;
        }
        prog.append(inst);
    }
    const std::string structural = prog.validate();
    if (!structural.empty()) {
        if (error)
            *error = "structurally invalid: " + structural;
        return false;
    }
    out = std::move(prog);
    return true;
}

bool
looksLikeProgram(const std::string &data)
{
    return data.size() >= sizeof(kProgramMagic) &&
           std::memcmp(data.data(), kProgramMagic,
                       sizeof(kProgramMagic)) == 0;
}

std::array<std::uint64_t, static_cast<std::size_t>(Opcode::NumOpcodes)>
opcodeHistogram(const Program &program)
{
    std::array<std::uint64_t,
               static_cast<std::size_t>(Opcode::NumOpcodes)>
        hist{};
    for (const Instruction &inst : program.instructions())
        ++hist[static_cast<std::size_t>(inst.op)];
    return hist;
}

std::string
hexdump(const std::string &data, std::size_t offset,
        std::size_t length)
{
    std::string out;
    const std::size_t end =
        length == std::string::npos
            ? data.size()
            : std::min(data.size(), offset + length);
    for (std::size_t line = offset; line < end; line += 16) {
        out += strformat("%08zx ", line);
        std::string ascii;
        for (std::size_t i = line; i < line + 16; ++i) {
            if (i % 8 == 0)
                out += ' ';
            if (i < end) {
                const unsigned char c =
                    static_cast<unsigned char>(data[i]);
                out += strformat("%02x ", c);
                ascii += std::isprint(c) ? static_cast<char>(c) : '.';
            } else {
                out += "   ";
            }
        }
        out += " |" + ascii + "|\n";
    }
    return out;
}

} // namespace manna::isa
