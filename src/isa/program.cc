#include "program.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::isa
{

void
Program::beginLoop(std::uint32_t count)
{
    Instruction inst;
    inst.op = Opcode::Loop;
    inst.count = count;
    insts_.push_back(inst);
}

void
Program::endLoop()
{
    Instruction inst;
    inst.op = Opcode::EndLoop;
    insts_.push_back(inst);
}

std::string
Program::validate() const
{
    std::size_t depth = 0;
    for (std::size_t i = 0; i < insts_.size(); ++i) {
        const Instruction &inst = insts_[i];
        switch (inst.op) {
          case Opcode::Loop:
            if (inst.count == 0)
                return strformat("instruction %zu: loop count is zero",
                                 i);
            ++depth;
            if (depth > kMaxLoopDepth)
                return strformat(
                    "instruction %zu: loop nesting %zu exceeds max %zu",
                    i, depth, kMaxLoopDepth);
            break;
          case Opcode::EndLoop:
            if (depth == 0)
                return strformat(
                    "instruction %zu: endloop without matching loop", i);
            --depth;
            break;
          case Opcode::Halt:
            if (i + 1 != insts_.size())
                return strformat(
                    "instruction %zu: halt must be the last instruction",
                    i);
            break;
          default:
            break;
        }
    }
    if (depth != 0)
        return strformat("%zu unclosed loop(s) at end of program", depth);
    return "";
}

std::uint64_t
Program::dynamicLength() const
{
    // Walk with a multiplier stack.
    std::uint64_t total = 0;
    std::vector<std::uint64_t> multipliers = {1};
    for (const Instruction &inst : insts_) {
        switch (inst.op) {
          case Opcode::Loop:
            total += multipliers.back();
            multipliers.push_back(multipliers.back() * inst.count);
            break;
          case Opcode::EndLoop:
            MANNA_ASSERT(multipliers.size() > 1,
                         "unbalanced loop in dynamicLength");
            total += multipliers[multipliers.size() - 2];
            multipliers.pop_back();
            break;
          default:
            total += multipliers.back();
            break;
        }
    }
    return total;
}

std::string
Program::disassemble() const
{
    std::string out;
    std::size_t depth = 0;
    for (const Instruction &inst : insts_) {
        if (inst.op == Opcode::EndLoop && depth > 0)
            --depth;
        out += std::string(4 * depth, ' ');
        out += inst.toString();
        out += "\n";
        if (inst.op == Opcode::Loop)
            ++depth;
    }
    return out;
}

std::string
Program::serialize() const
{
    std::string out;
    out.reserve(insts_.size() * kEncodedBytes);
    for (const Instruction &inst : insts_)
        encode(inst, out);
    return out;
}

bool
Program::deserialize(const std::string &data, Program &out)
{
    if (data.size() % kEncodedBytes != 0)
        return false;
    Program prog;
    for (std::size_t off = 0; off < data.size(); off += kEncodedBytes) {
        Instruction inst;
        if (!decode(data, off, inst))
            return false;
        prog.append(inst);
    }
    out = std::move(prog);
    return true;
}

} // namespace manna::isa
