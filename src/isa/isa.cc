#include "isa.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::isa
{

const char *
toString(Space s)
{
    switch (s) {
      case Space::None:
        return "none";
      case Space::MatBuf:
        return "mbuf";
      case Space::MatSpad:
        return "mspad";
      case Space::VecBuf:
        return "vbuf";
      case Space::VecSpad:
        return "vspad";
    }
    return "?";
}

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return "nop";
      case Opcode::Halt:
        return "halt";
      case Opcode::Loop:
        return "loop";
      case Opcode::EndLoop:
        return "endloop";
      case Opcode::DmaLoadM:
        return "dma.load.m";
      case Opcode::DmatLoadM:
        return "dmat.load.m";
      case Opcode::DmaStoreM:
        return "dma.store.m";
      case Opcode::DmaLoadV:
        return "dma.load.v";
      case Opcode::DmaStoreV:
        return "dma.store.v";
      case Opcode::Vmm:
        return "vmm";
      case Opcode::EwAdd:
        return "ew.add";
      case Opcode::EwSub:
        return "ew.sub";
      case Opcode::EwMul:
        return "ew.mul";
      case Opcode::EwMac:
        return "ew.mac";
      case Opcode::EwAddImm:
        return "ew.addi";
      case Opcode::EwMulImm:
        return "ew.muli";
      case Opcode::EwRsubImm:
        return "ew.rsubi";
      case Opcode::Fill:
        return "fill";
      case Opcode::SfuExp:
        return "sfu.exp";
      case Opcode::SfuPow:
        return "sfu.pow";
      case Opcode::SfuRecip:
        return "sfu.recip";
      case Opcode::SfuSqrt:
        return "sfu.sqrt";
      case Opcode::SfuSigmoid:
        return "sfu.sigmoid";
      case Opcode::SfuTanh:
        return "sfu.tanh";
      case Opcode::SfuSoftplus:
        return "sfu.softplus";
      case Opcode::SfuAccSum:
        return "sfu.accsum";
      case Opcode::SfuAccMax:
        return "sfu.accmax";
      case Opcode::Reduce:
        return "reduce";
      case Opcode::Broadcast:
        return "broadcast";
      case Opcode::NumOpcodes:
        break;
    }
    return "?";
}

std::string
profileKey(Opcode op)
{
    std::string key = toString(op);
    for (char &c : key)
        if (c == '.')
            c = '_';
    return key;
}

const char *
toString(ReduceOp op)
{
    switch (op) {
      case ReduceOp::Sum:
        return "sum";
      case ReduceOp::Max:
        return "max";
    }
    return "?";
}

std::uint32_t
Operand::effectiveBase(const std::int64_t iters[kMaxLoopDepth],
                       std::size_t depth) const
{
    std::int64_t addr = base;
    for (std::size_t l = 0; l < depth && l < kMaxLoopDepth; ++l)
        addr += iters[l] * stride[l];
    MANNA_ASSERT(addr >= 0, "operand address underflow: %lld",
                 static_cast<long long>(addr));
    return static_cast<std::uint32_t>(addr);
}

std::string
Operand::toString() const
{
    if (!valid())
        return "-";
    std::string s = strformat("%s[%u:%u", manna::isa::toString(space),
                              base, len);
    if (stride[0] != 0 || stride[1] != 0 || stride[2] != 0)
        s += strformat(",%d,%d,%d", stride[0], stride[1], stride[2]);
    s += "]";
    return s;
}

Operand
makeOperand(Space space, std::uint32_t base, std::uint32_t len)
{
    Operand op;
    op.space = space;
    op.base = base;
    op.len = len;
    return op;
}

Operand
makeStridedOperand(Space space, std::uint32_t base, std::uint32_t len,
                   std::int32_t stride0, std::int32_t stride1,
                   std::int32_t stride2)
{
    Operand op = makeOperand(space, base, len);
    op.stride[0] = stride0;
    op.stride[1] = stride1;
    op.stride[2] = stride2;
    return op;
}

std::string
Instruction::toString() const
{
    std::string s = manna::isa::toString(op);
    if (op == Opcode::Loop) {
        s += strformat(" %u", count);
        return s;
    }
    if (op == Opcode::Vmm) {
        if (flags.rowDot)
            s += ".rowdot";
        if (flags.withNorms)
            s += ".norms";
        if (flags.accumulate)
            s += ".acc";
        if (flags.reuseB)
            s += ".reuse";
        if (flags.skewed)
            s += ".skew";
        if (flags.dstResident)
            s += ".res";
    }
    if (op == Opcode::Reduce)
        s += strformat(".%s", manna::isa::toString(flags.reduceOp));
    const bool isMatrixDma = op == Opcode::DmaLoadM ||
                             op == Opcode::DmatLoadM ||
                             op == Opcode::DmaStoreM;
    if (isMatrixDma) {
        // srcB.base carries the buffer-side row pitch for the 2D
        // transfers; it is not a real operand.
        s += strformat(" rows=%u pitch=%u", count, srcB.base);
    }
    if (op == Opcode::Vmm && flags.withNorms)
        s += strformat(" off=%u", count);
    // Communication instructions carry a compiler-internal tag in
    // `count` (compiler/compiled_model.hh); emitting it keeps
    // assemble(disassemble(p)) == p for compiler-emitted programs.
    if ((op == Opcode::Reduce || op == Opcode::Broadcast) && count != 0)
        s += strformat(" tag=%u", count);
    if (dst.valid())
        s += " d=" + dst.toString();
    if (srcA.valid())
        s += " a=" + srcA.toString();
    if (srcB.valid() && !isMatrixDma)
        s += " b=" + srcB.toString();
    if (imm != 0.0f)
        s += strformat(" imm=%.9g", static_cast<double>(imm));
    return s;
}

namespace
{

// Explicit little-endian byte order, so encoded programs are
// byte-identical across hosts (docs/ISA.md "Binary encoding").
void
put32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t
get32(const std::string &data, std::size_t off)
{
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(data[off + i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

void
encodeOperand(const Operand &op, std::string &out)
{
    put32(out, static_cast<std::uint32_t>(op.space));
    put32(out, op.base);
    for (std::size_t i = 0; i < kMaxLoopDepth; ++i)
        put32(out, static_cast<std::uint32_t>(op.stride[i]));
    put32(out, op.len);
}

bool
decodeOperand(const std::string &data, std::size_t off, Operand &op)
{
    const std::uint32_t space = get32(data, off);
    if (space > static_cast<std::uint32_t>(Space::VecSpad))
        return false;
    op.space = static_cast<Space>(space);
    op.base = get32(data, off + 4);
    for (std::size_t i = 0; i < kMaxLoopDepth; ++i)
        op.stride[i] =
            static_cast<std::int32_t>(get32(data, off + 8 + 4 * i));
    op.len = get32(data, off + 8 + 4 * kMaxLoopDepth);
    return true;
}

constexpr std::size_t kOperandBytes = 4 * (3 + kMaxLoopDepth);

} // namespace

void
encode(const Instruction &inst, std::string &out)
{
    const std::size_t start = out.size();
    std::uint32_t head = static_cast<std::uint32_t>(inst.op);
    std::uint32_t flagBits = 0;
    if (inst.flags.rowDot)
        flagBits |= 1u;
    if (inst.flags.accumulate)
        flagBits |= 2u;
    if (inst.flags.withNorms)
        flagBits |= 4u;
    if (inst.flags.reduceOp == ReduceOp::Max)
        flagBits |= 8u;
    if (inst.flags.reuseB)
        flagBits |= 16u;
    if (inst.flags.skewed)
        flagBits |= 32u;
    if (inst.flags.dstResident)
        flagBits |= 64u;
    put32(out, head);
    put32(out, flagBits);
    put32(out, inst.count);
    std::uint32_t immBits;
    std::memcpy(&immBits, &inst.imm, 4);
    put32(out, immBits);
    encodeOperand(inst.dst, out);
    encodeOperand(inst.srcA, out);
    encodeOperand(inst.srcB, out);
    // Pad to the fixed size.
    while (out.size() - start < kEncodedBytes)
        out.push_back('\0');
    MANNA_ASSERT(out.size() - start == kEncodedBytes,
                 "encoding overflowed the fixed size: %zu",
                 out.size() - start);
}

bool
decode(const std::string &data, std::size_t offset, Instruction &inst)
{
    if (offset + kEncodedBytes > data.size())
        return false;
    const std::uint32_t head = get32(data, offset);
    if (head >= static_cast<std::uint32_t>(Opcode::NumOpcodes))
        return false;
    inst.op = static_cast<Opcode>(head);
    const std::uint32_t flagBits = get32(data, offset + 4);
    inst.flags.rowDot = flagBits & 1u;
    inst.flags.accumulate = flagBits & 2u;
    inst.flags.withNorms = flagBits & 4u;
    inst.flags.reduceOp =
        (flagBits & 8u) ? ReduceOp::Max : ReduceOp::Sum;
    inst.flags.reuseB = flagBits & 16u;
    inst.flags.skewed = flagBits & 32u;
    inst.flags.dstResident = flagBits & 64u;
    inst.count = get32(data, offset + 8);
    const std::uint32_t immBits = get32(data, offset + 12);
    std::memcpy(&inst.imm, &immBits, 4);
    std::size_t off = offset + 16;
    if (!decodeOperand(data, off, inst.dst))
        return false;
    off += kOperandBytes;
    if (!decodeOperand(data, off, inst.srcA))
        return false;
    off += kOperandBytes;
    if (!decodeOperand(data, off, inst.srcB))
        return false;
    return true;
}

} // namespace manna::isa
