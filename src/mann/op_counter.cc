#include "op_counter.hh"

#include "common/logging.hh"

namespace manna::mann
{

const std::array<Kernel, kNumKernels> &
allKernels()
{
    static const std::array<Kernel, kNumKernels> kernels = {
        Kernel::Controller,       Kernel::Heads,
        Kernel::KeySimilarity,    Kernel::ContentWeighting,
        Kernel::Interpolation,    Kernel::ShiftWeighting,
        Kernel::Sharpening,       Kernel::SoftRead,
        Kernel::SoftWrite,
    };
    return kernels;
}

const char *
toString(Kernel k)
{
    switch (k) {
      case Kernel::Controller:
        return "controller";
      case Kernel::Heads:
        return "heads";
      case Kernel::KeySimilarity:
        return "key-similarity";
      case Kernel::ContentWeighting:
        return "content-weighting";
      case Kernel::Interpolation:
        return "interpolation";
      case Kernel::ShiftWeighting:
        return "shift-weighting";
      case Kernel::Sharpening:
        return "sharpening";
      case Kernel::SoftRead:
        return "soft-read";
      case Kernel::SoftWrite:
        return "soft-write";
    }
    return "?";
}

const std::array<KernelGroup, kNumKernelGroups> &
allKernelGroups()
{
    static const std::array<KernelGroup, kNumKernelGroups> groups = {
        KernelGroup::Controller, KernelGroup::Heads,
        KernelGroup::Addressing, KernelGroup::KeySimilarity,
        KernelGroup::SoftRead,   KernelGroup::SoftWrite,
    };
    return groups;
}

const char *
toString(KernelGroup g)
{
    switch (g) {
      case KernelGroup::Controller:
        return "controller";
      case KernelGroup::Heads:
        return "heads";
      case KernelGroup::Addressing:
        return "addressing";
      case KernelGroup::KeySimilarity:
        return "key-similarity";
      case KernelGroup::SoftRead:
        return "soft-read";
      case KernelGroup::SoftWrite:
        return "soft-write";
    }
    return "?";
}

KernelGroup
groupOf(Kernel k)
{
    switch (k) {
      case Kernel::Controller:
        return KernelGroup::Controller;
      case Kernel::Heads:
        return KernelGroup::Heads;
      case Kernel::KeySimilarity:
        return KernelGroup::KeySimilarity;
      case Kernel::ContentWeighting:
      case Kernel::Interpolation:
      case Kernel::ShiftWeighting:
      case Kernel::Sharpening:
        return KernelGroup::Addressing;
      case Kernel::SoftRead:
        return KernelGroup::SoftRead;
      case Kernel::SoftWrite:
        return KernelGroup::SoftWrite;
    }
    panic("unknown kernel");
}

double
KernelWork::flopsPerByte() const
{
    const double bytes = static_cast<double>(bytesTouched());
    return bytes > 0.0 ? static_cast<double>(flops()) / bytes : 0.0;
}

KernelWork &
KernelWork::operator+=(const KernelWork &o)
{
    macOps += o.macOps;
    elwiseOps += o.elwiseOps;
    specialOps += o.specialOps;
    memReads += o.memReads;
    memWrites += o.memWrites;
    parallelism = std::max(parallelism, o.parallelism);
    return *this;
}

OpCounter::OpCounter(const MannConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

KernelWork
OpCounter::kernelWork(Kernel k) const
{
    const std::uint64_t n = cfg_.memN;
    const std::uint64_t m = cfg_.memM;
    const std::uint64_t hr = cfg_.numReadHeads;
    const std::uint64_t hw = cfg_.numWriteHeads;
    const std::uint64_t heads = hr + hw;
    const std::uint64_t taps = cfg_.shiftTaps();
    const std::uint64_t hidden = cfg_.hiddenDim();

    KernelWork w;
    switch (k) {
      case Kernel::Controller: {
        // Dense layers: layer l is width x inDim MACs; activations are
        // element-wise; plus the output projection.
        std::uint64_t inDim = cfg_.controllerInputDim();
        // LSTM layers cost 4x the matrix work plus gate math; the MLP
        // costs one matrix per layer.
        const std::uint64_t gateFactor =
            cfg_.controllerKind == ControllerKind::LSTM ? 4 : 1;
        for (std::size_t l = 0; l < cfg_.controllerLayers; ++l) {
            w.macOps += gateFactor * hidden * inDim;
            if (cfg_.controllerKind == ControllerKind::LSTM) {
                w.macOps += gateFactor * hidden * hidden; // recurrent
                w.elwiseOps += 5 * hidden; // gate combines
                w.specialOps += 5 * hidden; // sigmoid/tanh
            } else {
                w.specialOps += hidden; // tanh
            }
            w.memReads += gateFactor * hidden * inDim + inDim;
            w.memWrites += hidden;
            inDim = hidden;
        }
        w.macOps += cfg_.outputDim * hidden;
        w.memReads += cfg_.outputDim * hidden + hidden;
        w.memWrites += cfg_.outputDim;
        w.parallelism = hidden;
        break;
      }
      case Kernel::Heads: {
        // One paramDim x hidden matrix-vector product per head, plus
        // the squashing nonlinearities over the emitted parameters.
        const std::uint64_t readParams = cfg_.readHeadParamDim();
        const std::uint64_t writeParams = cfg_.writeHeadParamDim();
        const std::uint64_t totalParams =
            hr * readParams + hw * writeParams;
        w.macOps = totalParams * hidden;
        w.specialOps = totalParams; // sigmoid/softplus/tanh decodes
        w.memReads = totalParams * hidden + heads * hidden;
        w.memWrites = totalParams;
        w.parallelism = totalParams;
        break;
      }
      case Kernel::KeySimilarity: {
        // Eq. 4 for every row and head: dot(k, M(i)) plus the row
        // norm accumulation, then one divide per row.
        w.macOps = heads * n * (2 * m); // dot + norm accumulation
        w.specialOps = heads * n * 2;   // sqrt + divide per row
        w.memReads = heads * (n * m + m);
        w.memWrites = heads * n;
        w.parallelism = n;
        break;
      }
      case Kernel::ContentWeighting: {
        // Eq. 5: scale by beta, exp, sum, normalize.
        w.elwiseOps = heads * (2 * n); // beta scale + divide-as-mul
        w.specialOps = heads * n;      // exp
        w.macOps = heads * n;          // sum reduction
        w.memReads = heads * 2 * n;
        w.memWrites = heads * n;
        w.parallelism = n;
        break;
      }
      case Kernel::Interpolation: {
        // Eq. 6: g*wc + (1-g)*wPrev.
        w.elwiseOps = heads * 3 * n;
        w.memReads = heads * 2 * n;
        w.memWrites = heads * n;
        w.parallelism = n;
        break;
      }
      case Kernel::ShiftWeighting: {
        // Eq. 7: circular convolution with `taps` taps.
        w.macOps = heads * n * taps;
        w.memReads = heads * (n * taps + taps);
        w.memWrites = heads * n;
        w.parallelism = n;
        break;
      }
      case Kernel::Sharpening: {
        // Eq. 8: pow per element, sum, normalize.
        w.specialOps = heads * n; // pow
        w.macOps = heads * n;     // sum
        w.elwiseOps = heads * n;  // normalize multiply
        w.memReads = heads * 2 * n;
        w.memWrites = heads * n;
        w.parallelism = n;
        break;
      }
      case Kernel::SoftRead: {
        // Eq. 1: w^T * M per read head.
        w.macOps = hr * n * m;
        w.memReads = hr * (n * m + n);
        w.memWrites = hr * m;
        w.parallelism = m;
        break;
      }
      case Kernel::SoftWrite: {
        // Eqs. 2-3 per write head: per element one multiply for
        // w(i)*e, a subtract, a multiply into M, one multiply for
        // w(i)*a and an add.
        w.elwiseOps = hw * n * m * 5;
        w.memReads = hw * (n * m + 2 * m + n);
        w.memWrites = hw * n * m;
        w.parallelism = n * m;
        break;
      }
    }
    return w;
}

KernelWork
OpCounter::groupWork(KernelGroup g) const
{
    KernelWork acc;
    for (Kernel k : allKernels())
        if (groupOf(k) == g)
            acc += kernelWork(k);
    return acc;
}

KernelWork
OpCounter::totalWork() const
{
    KernelWork acc;
    for (Kernel k : allKernels())
        acc += kernelWork(k);
    return acc;
}

KernelWork
OpCounter::nonControllerWork() const
{
    KernelWork acc;
    for (Kernel k : allKernels())
        if (k != Kernel::Controller)
            acc += kernelWork(k);
    return acc;
}

OpCounter::OperationMix
OpCounter::operationMix() const
{
    const KernelWork w = nonControllerWork();
    const double total = static_cast<double>(w.macOps + w.elwiseOps +
                                             w.specialOps);
    OperationMix mix{};
    if (total > 0.0) {
        mix.macFraction = static_cast<double>(w.macOps) / total;
        mix.elwiseFraction = static_cast<double>(w.elwiseOps) / total;
        mix.specialFraction = static_cast<double>(w.specialOps) / total;
    }
    return mix;
}

std::string
OpCounter::accessExpression(Kernel k)
{
    switch (k) {
      case Kernel::Controller:
        return "O(params)";
      case Kernel::Heads:
        return "O(paramDim*hidden*(Hr+Hw))";
      case Kernel::KeySimilarity:
        return "O(Mn*Mm*(Hr+Hw))";
      case Kernel::ContentWeighting:
      case Kernel::Interpolation:
      case Kernel::ShiftWeighting:
      case Kernel::Sharpening:
        return "O(Mn*(Hr+Hw))";
      case Kernel::SoftRead:
        return "O(Mn*Mm*Hr)";
      case Kernel::SoftWrite:
        return "O(Mn*Mm*Hw)";
    }
    return "?";
}

std::string
OpCounter::primitiveName(Kernel k)
{
    switch (k) {
      case Kernel::Controller:
        return "DNN layers";
      case Kernel::Heads:
        return "Vector-Matrix Mul.";
      case Kernel::KeySimilarity:
        return "Vector-Matrix Mul.";
      case Kernel::ContentWeighting:
        return "Normalization";
      case Kernel::Interpolation:
        return "Elwise Mul/Add/Sub";
      case Kernel::ShiftWeighting:
        return "Circular Conv.";
      case Kernel::Sharpening:
        return "Normalization";
      case Kernel::SoftRead:
        return "Vector-Matrix Mul.";
      case Kernel::SoftWrite:
        return "Elwise Mul/Add/Sub";
    }
    return "?";
}

std::string
OpCounter::reductionDirection(Kernel k)
{
    switch (k) {
      case Kernel::KeySimilarity:
        return "Row-wise";
      case Kernel::SoftRead:
        return "Column-wise";
      default:
        return "-";
    }
}

std::string
OpCounter::symbolicFlopsPerByte(Kernel k)
{
    switch (k) {
      case Kernel::Controller:
        return "batch-dependent";
      case Kernel::Heads:
        return "~1";
      case Kernel::KeySimilarity:
        return "Hw+Hr";
      case Kernel::ContentWeighting:
        return "3";
      case Kernel::Interpolation:
        return "2";
      case Kernel::ShiftWeighting:
        return "S";
      case Kernel::Sharpening:
        return "3";
      case Kernel::SoftRead:
        return "Hr";
      case Kernel::SoftWrite:
        return "Hw";
    }
    return "?";
}

} // namespace manna::mann
