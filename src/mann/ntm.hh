/**
 * @file
 * Golden functional model of the full Neural Turing Machine
 * (Figure 1 of the paper): controller + heads + addressing + soft
 * read/write over the differentiable external memory.
 *
 * The cycle-level Manna simulator is validated against this model: for
 * identical weights and inputs, the simulator's functional datapath
 * must produce the same outputs within floating-point reassociation
 * tolerance.
 */

#ifndef MANNA_MANN_NTM_HH
#define MANNA_MANN_NTM_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "mann/addressing.hh"
#include "mann/controller.hh"
#include "mann/head.hh"
#include "mann/memory.hh"

namespace manna::mann
{

/** Everything observable about one NTM time step (for validation). */
struct StepTrace
{
    FVec controllerInput;
    FVec hidden;
    FVec output;
    std::vector<HeadParams> readParams;
    std::vector<HeadParams> writeParams;
    std::vector<FVec> readWeights;  ///< final w per read head
    std::vector<FVec> writeWeights; ///< final w per write head
    std::vector<FVec> readVectors;  ///< r_h^t per read head
};

/**
 * A complete NTM instance with synthetic (randomly initialized)
 * weights.
 *
 * Per-step dataflow (matching the paper's equations):
 *  1. controller(input ++ prevReads) -> hidden, output
 *  2. each head projects hidden -> key/beta/gate/shift/gamma(/erase/add)
 *  3. addressing (Eqs. 4-8) against M^t for every head
 *  4. soft read (Eq. 1) from M^t for the read heads
 *  5. soft write (Eqs. 2-3), sequentially per write head: M^t -> M^{t+1}
 */
class Ntm
{
  public:
    /** Construct with synthetic weights drawn from @p seed. */
    Ntm(const MannConfig &cfg, std::uint64_t seed = 1);

    /** Reset memory, previous weights, and read vectors. */
    void reset();

    /**
     * Execute one time step with external input @p input
     * (inputDim elements). Returns the full trace for validation.
     */
    StepTrace step(const FVec &input);

    /** Run a sequence and return the per-step output vectors. */
    std::vector<FVec> run(const std::vector<FVec> &inputs);

    const MannConfig &config() const { return cfg_; }
    const ExternalMemory &memory() const { return memory_; }
    ExternalMemory &memory() { return memory_; }
    Controller &controller() { return *controller_; }
    const std::vector<Head> &readHeads() const { return readHeads_; }
    const std::vector<Head> &writeHeads() const { return writeHeads_; }

    /** Previous-step weightings (needed by the simulator to mirror
     * state across implementations). */
    const std::vector<FVec> &prevReadWeights() const
    {
        return prevReadWeights_;
    }
    const std::vector<FVec> &prevWriteWeights() const
    {
        return prevWriteWeights_;
    }
    const std::vector<FVec> &prevReads() const { return prevReads_; }

    /** Total parameter count across controller and heads. */
    std::size_t parameterCount() const;

  private:
    MannConfig cfg_;
    Rng rng_;
    std::unique_ptr<Controller> controller_;
    std::vector<Head> readHeads_;
    std::vector<Head> writeHeads_;
    ExternalMemory memory_;

    std::vector<FVec> prevReadWeights_;
    std::vector<FVec> prevWriteWeights_;
    std::vector<FVec> prevReads_;

    // Reused across steps so the addressing pipeline's intermediates
    // never hit the heap after the first step.
    AddressingScratch addrScratch_;
};

} // namespace manna::mann

#endif // MANNA_MANN_NTM_HH
