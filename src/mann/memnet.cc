#include "memnet.hh"

#include "common/logging.hh"
#include "mann/controller.hh"
#include "tensor/vector_ops.hh"

namespace manna::mann
{

void
MemNetConfig::validate() const
{
    if (numSentences == 0 || sentenceDim == 0 || embedDim == 0)
        fatal("MemNet dimensions must be nonzero");
    if (hops == 0)
        fatal("MemNet needs at least one hop");
    if (answerDim == 0)
        fatal("MemNet answer dimension must be nonzero");
}

MemNet::MemNet(const MemNetConfig &cfg, std::uint64_t seed) : cfg_(cfg)
{
    cfg_.validate();
    Rng rng(seed);
    embedA_ = randomWeights(cfg_.embedDim, cfg_.sentenceDim, rng);
    embedC_ = randomWeights(cfg_.embedDim, cfg_.sentenceDim, rng);
    embedB_ = randomWeights(cfg_.embedDim, cfg_.sentenceDim, rng);
    hopH_ = randomWeights(cfg_.embedDim, cfg_.embedDim, rng);
    answerW_ = randomWeights(cfg_.answerDim, cfg_.embedDim, rng);
    inputMem_ = FMat(cfg_.numSentences, cfg_.embedDim);
    outputMem_ = FMat(cfg_.numSentences, cfg_.embedDim);
}

void
MemNet::loadEpisode(const std::vector<FVec> &sentences)
{
    MANNA_ASSERT(sentences.size() <= cfg_.numSentences,
                 "episode of %zu sentences exceeds memory of %zu",
                 sentences.size(), cfg_.numSentences);
    inputMem_.fill(0.0f);
    outputMem_.fill(0.0f);
    for (std::size_t i = 0; i < sentences.size(); ++i) {
        MANNA_ASSERT(sentences[i].size() == cfg_.sentenceDim,
                     "sentence %zu width %zu != %zu", i,
                     sentences[i].size(), cfg_.sentenceDim);
        inputMem_.setRow(i, tensor::matVecMul(embedA_, sentences[i]));
        outputMem_.setRow(i, tensor::matVecMul(embedC_, sentences[i]));
    }
    loaded_ = true;
}

MemNetTrace
MemNet::answer(const FVec &query) const
{
    MANNA_ASSERT(loaded_, "answer() before loadEpisode()");
    MANNA_ASSERT(query.size() == cfg_.sentenceDim,
                 "query width %zu != %zu", query.size(),
                 cfg_.sentenceDim);

    MemNetTrace trace;
    FVec u = tensor::matVecMul(embedB_, query);
    for (std::size_t hop = 0; hop < cfg_.hops; ++hop) {
        // p = softmax(m_i . u): row-wise dots (same direction as the
        // NTM's key similarity), softmax, then a column-accumulated
        // weighted sum over the output memory (the soft-read
        // direction). Both matrices are *read-only*.
        const FVec scores = tensor::matVecMul(inputMem_, u);
        const FVec p = tensor::softmax(scores);
        const FVec o = tensor::vecMatMul(p, outputMem_);
        const FVec hu = tensor::matVecMul(hopH_, u);
        u = tensor::add(hu, o);
        trace.attentions.push_back(p);
    }
    trace.answer = tensor::matVecMul(answerW_, u);
    return trace;
}

MemNet::QueryWork
MemNet::queryWork() const
{
    const std::uint64_t n = cfg_.numSentences;
    const std::uint64_t d = cfg_.embedDim;
    QueryWork work{};
    // Per hop: scores (n*d MACs), weighted sum (n*d), state
    // transform (d*d); plus the query/answer projections.
    work.macOps = cfg_.hops * (2 * n * d + d * d) +
                  2 * cfg_.sentenceDim * d;
    work.elwiseOps = cfg_.hops * d; // residual adds
    work.specialOps = cfg_.hops * n; // softmax exponentials
    work.memWriteOps = 0;           // no soft writes, ever
    return work;
}

} // namespace manna::mann
