/**
 * @file
 * NTM addressing mechanism (Eqs. 4-8): content-based weighting,
 * location interpolation, shift weighting (circular convolution), and
 * weight sharpening. These are the paper's "addressing kernels"
 * (Table 1), each O(memN) per head.
 */

#ifndef MANNA_MANN_ADDRESSING_HH
#define MANNA_MANN_ADDRESSING_HH

#include "mann/head.hh"
#include "tensor/matrix.hh"

namespace manna::mann
{

/**
 * Content-based weighting (Eqs. 4-5): cosine similarity of the key
 * against every memory row, amplified by beta and normalized with a
 * softmax.
 */
FVec contentWeighting(const FMat &memory, const FVec &key, float beta,
                      float epsilon);

/**
 * Location interpolation (Eq. 6):
 * wg(i) = g * wc(i) + (1 - g) * wPrev(i).
 */
FVec interpolate(const FVec &wc, const FVec &wPrev, float gate);

/**
 * Shift weighting (Eq. 7): circular convolution of the interpolated
 * weighting with the head's shift kernel.
 */
FVec shiftWeighting(const FVec &wg, const FVec &shift);

/**
 * Weight sharpening (Eq. 8): raise to gamma and renormalize.
 */
FVec sharpenWeighting(const FVec &ws, float gamma);

/**
 * Full addressing pipeline for one head against the given memory,
 * producing the final weight vector w_h^t.
 */
FVec addressHead(const FMat &memory, const HeadParams &params,
                 const FVec &wPrev, float epsilon);

/**
 * Reusable intermediates for addressHeadInto(). Holding one of these
 * per simulator object keeps the addressing pipeline allocation-free
 * after the first step.
 */
struct AddressingScratch
{
    FVec sim; ///< raw cosine similarities
    FVec wc;  ///< content weighting
    FVec wg;  ///< interpolated weighting
    FVec ws;  ///< shifted weighting
};

/**
 * Allocation-free twin of addressHead(): bit-identical result written
 * into @p out, intermediates staged in @p scratch. @p out must not
 * alias @p wPrev or any scratch member.
 */
void addressHeadInto(const FMat &memory, const HeadParams &params,
                     const FVec &wPrev, float epsilon,
                     AddressingScratch &scratch, FVec &out);

} // namespace manna::mann

#endif // MANNA_MANN_ADDRESSING_HH
