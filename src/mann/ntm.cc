#include "ntm.hh"

#include "common/logging.hh"
#include "tensor/vector_ops.hh"

namespace manna::mann
{

Ntm::Ntm(const MannConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), memory_(cfg.memN, cfg.memM)
{
    cfg_.validate();
    controller_ = makeController(cfg_, rng_);
    for (std::size_t h = 0; h < cfg_.numReadHeads; ++h)
        readHeads_.emplace_back(cfg_, /*isWrite=*/false, rng_);
    for (std::size_t h = 0; h < cfg_.numWriteHeads; ++h)
        writeHeads_.emplace_back(cfg_, /*isWrite=*/true, rng_);
    reset();
}

void
Ntm::reset()
{
    memory_.reset();
    controller_->reset();

    // Previous weightings start focused on row 0 (standard practice;
    // any fixed distribution works since it only seeds Eq. 6).
    FVec w0(cfg_.memN, 0.0f);
    w0[0] = 1.0f;
    prevReadWeights_.assign(cfg_.numReadHeads, w0);
    prevWriteWeights_.assign(cfg_.numWriteHeads, w0);
    prevReads_.assign(cfg_.numReadHeads, FVec(cfg_.memM, 0.0f));
}

StepTrace
Ntm::step(const FVec &input)
{
    MANNA_ASSERT(input.size() == cfg_.inputDim,
                 "NTM input size %zu != inputDim %zu", input.size(),
                 cfg_.inputDim);

    StepTrace trace;

    // 1. Controller.
    std::size_t inWidth = input.size();
    for (const auto &r : prevReads_)
        inWidth += r.size();
    trace.controllerInput.reserve(inWidth);
    trace.controllerInput.insert(trace.controllerInput.end(),
                                 input.begin(), input.end());
    for (const auto &r : prevReads_)
        trace.controllerInput.insert(trace.controllerInput.end(),
                                     r.begin(), r.end());
    ControllerOutput ctrl = controller_->forward(trace.controllerInput);
    trace.hidden = ctrl.hidden;
    trace.output = ctrl.output;

    // 2-3. Heads and addressing against M^t.
    for (std::size_t h = 0; h < readHeads_.size(); ++h) {
        HeadParams p = readHeads_[h].emit(trace.hidden);
        FVec &w = trace.readWeights.emplace_back();
        addressHeadInto(memory_.matrix(), p, prevReadWeights_[h],
                        cfg_.similarityEpsilon, addrScratch_, w);
        trace.readParams.push_back(std::move(p));
    }
    for (std::size_t h = 0; h < writeHeads_.size(); ++h) {
        HeadParams p = writeHeads_[h].emit(trace.hidden);
        FVec &w = trace.writeWeights.emplace_back();
        addressHeadInto(memory_.matrix(), p, prevWriteWeights_[h],
                        cfg_.similarityEpsilon, addrScratch_, w);
        trace.writeParams.push_back(std::move(p));
    }

    // 4. Soft reads from M^t.
    for (std::size_t h = 0; h < readHeads_.size(); ++h)
        memory_.softReadInto(trace.readWeights[h],
                             trace.readVectors.emplace_back());

    // 5. Soft writes: M^t -> M^{t+1}, sequential across write heads.
    for (std::size_t h = 0; h < writeHeads_.size(); ++h) {
        memory_.softWrite(trace.writeWeights[h],
                          trace.writeParams[h].erase,
                          trace.writeParams[h].addVec);
    }

    // Persist recurrent state.
    prevReadWeights_ = trace.readWeights;
    prevWriteWeights_ = trace.writeWeights;
    prevReads_ = trace.readVectors;

    return trace;
}

std::vector<FVec>
Ntm::run(const std::vector<FVec> &inputs)
{
    std::vector<FVec> outputs;
    outputs.reserve(inputs.size());
    for (const auto &x : inputs)
        outputs.push_back(step(x).output);
    return outputs;
}

std::size_t
Ntm::parameterCount() const
{
    std::size_t n = controller_->parameterCount();
    for (const auto &h : readHeads_)
        n += h.weights().size() + h.bias().size();
    for (const auto &h : writeHeads_)
        n += h.weights().size() + h.bias().size();
    return n;
}

} // namespace manna::mann
