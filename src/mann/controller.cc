#include "controller.hh"

#include <cmath>

#include "common/logging.hh"
#include "tensor/vector_ops.hh"

namespace manna::mann
{

using tensor::matVecMulBias;
using tensor::sigmoidScalar;

FMat
randomWeights(std::size_t rows, std::size_t cols, Rng &rng)
{
    FMat w(rows, cols);
    const double scale =
        std::sqrt(2.0 / static_cast<double>(rows + cols));
    for (auto &v : w.data())
        v = static_cast<float>(rng.gaussian(0.0, scale));
    return w;
}

FVec
randomBias(std::size_t n, Rng &rng)
{
    FVec b(n);
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian(0.0, 0.01));
    return b;
}

MlpController::MlpController(const MannConfig &cfg, Rng &rng)
    : outputWeights_(randomWeights(cfg.outputDim, cfg.hiddenDim(), rng)),
      outputBias_(randomBias(cfg.outputDim, rng))
{
    std::size_t inDim = cfg.controllerInputDim();
    for (std::size_t l = 0; l < cfg.controllerLayers; ++l) {
        layers_.push_back(randomWeights(cfg.controllerWidth, inDim, rng));
        biases_.push_back(randomBias(cfg.controllerWidth, rng));
        inDim = cfg.controllerWidth;
    }
}

ControllerOutput
MlpController::forward(const FVec &input)
{
    FVec act = input;
    for (std::size_t l = 0; l < layers_.size(); ++l)
        act = tensor::tanhVec(matVecMulBias(layers_[l], act, biases_[l]));

    ControllerOutput out;
    out.output = matVecMulBias(outputWeights_, act, outputBias_);
    out.hidden = std::move(act);
    return out;
}

std::size_t
MlpController::parameterCount() const
{
    std::size_t n = outputWeights_.size() + outputBias_.size();
    for (std::size_t l = 0; l < layers_.size(); ++l)
        n += layers_[l].size() + biases_[l].size();
    return n;
}

std::vector<const FMat *>
MlpController::weightMatrices() const
{
    std::vector<const FMat *> out;
    for (const auto &l : layers_)
        out.push_back(&l);
    out.push_back(&outputWeights_);
    return out;
}

LstmController::LstmController(const MannConfig &cfg, Rng &rng)
    : width_(cfg.controllerWidth),
      outputWeights_(randomWeights(cfg.outputDim, cfg.hiddenDim(), rng)),
      outputBias_(randomBias(cfg.outputDim, rng))
{
    std::size_t inDim = cfg.controllerInputDim();
    for (std::size_t l = 0; l < cfg.controllerLayers; ++l) {
        Layer layer;
        layer.inputWeights = randomWeights(4 * width_, inDim, rng);
        layer.hiddenWeights = randomWeights(4 * width_, width_, rng);
        layer.bias = randomBias(4 * width_, rng);
        layer.h.assign(width_, 0.0f);
        layer.c.assign(width_, 0.0f);
        layers_.push_back(std::move(layer));
        inDim = width_;
    }
}

ControllerOutput
LstmController::forward(const FVec &input)
{
    FVec act = input;
    for (auto &layer : layers_) {
        FVec pre = matVecMulBias(layer.inputWeights, act, layer.bias);
        const FVec rec = tensor::matVecMul(layer.hiddenWeights, layer.h);
        for (std::size_t i = 0; i < pre.size(); ++i)
            pre[i] += rec[i];

        // Gates packed as [i; f; g; o].
        for (std::size_t j = 0; j < width_; ++j) {
            const float ig = sigmoidScalar(pre[j]);
            const float fg = sigmoidScalar(pre[width_ + j]);
            const float gg = std::tanh(pre[2 * width_ + j]);
            const float og = sigmoidScalar(pre[3 * width_ + j]);
            layer.c[j] = fg * layer.c[j] + ig * gg;
            layer.h[j] = og * std::tanh(layer.c[j]);
        }
        act = layer.h;
    }

    ControllerOutput out;
    out.output = matVecMulBias(outputWeights_, act, outputBias_);
    out.hidden = std::move(act);
    return out;
}

void
LstmController::reset()
{
    for (auto &layer : layers_) {
        std::fill(layer.h.begin(), layer.h.end(), 0.0f);
        std::fill(layer.c.begin(), layer.c.end(), 0.0f);
    }
}

std::size_t
LstmController::parameterCount() const
{
    std::size_t n = outputWeights_.size() + outputBias_.size();
    for (const auto &l : layers_)
        n += l.inputWeights.size() + l.hiddenWeights.size() +
             l.bias.size();
    return n;
}

std::vector<const FMat *>
LstmController::weightMatrices() const
{
    std::vector<const FMat *> out;
    for (const auto &l : layers_) {
        out.push_back(&l.inputWeights);
        out.push_back(&l.hiddenWeights);
    }
    out.push_back(&outputWeights_);
    return out;
}

std::unique_ptr<Controller>
makeController(const MannConfig &cfg, Rng &rng)
{
    switch (cfg.controllerKind) {
      case ControllerKind::MLP:
        return std::make_unique<MlpController>(cfg, rng);
      case ControllerKind::LSTM:
        return std::make_unique<LstmController>(cfg, rng);
    }
    panic("unknown controller kind");
}

} // namespace manna::mann
