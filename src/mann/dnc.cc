#include "dnc.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/types.hh"
#include "mann/addressing.hh"
#include "tensor/vector_ops.hh"

namespace manna::mann
{

using tensor::FMat;

void
DncConfig::validate() const
{
    if (memN == 0 || memM == 0)
        fatal("DNC memory dimensions must be nonzero");
    if (numReadHeads == 0)
        fatal("DNC needs at least one read head");
    if (controllerLayers == 0 || controllerWidth == 0)
        fatal("DNC controller dimensions must be nonzero");
    if (inputDim == 0 || outputDim == 0)
        fatal("DNC input/output dimensions must be nonzero");
}

Dnc::Dnc(const DncConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), memory_(cfg.memN, cfg.memM),
      link_(cfg.memN, cfg.memN)
{
    cfg_.validate();

    // Reuse the NTM controller over an equivalent shape.
    MannConfig ctrlShape;
    ctrlShape.memN = cfg_.memN;
    ctrlShape.memM = cfg_.memM;
    ctrlShape.controllerLayers = cfg_.controllerLayers;
    ctrlShape.controllerWidth = cfg_.controllerWidth;
    ctrlShape.controllerKind = cfg_.controllerKind;
    ctrlShape.inputDim = cfg_.inputDim;
    ctrlShape.outputDim = cfg_.outputDim;
    ctrlShape.numReadHeads = cfg_.numReadHeads;
    ctrlShape.numWriteHeads = 1;
    controller_ = makeController(ctrlShape, rng_);

    // Interface projection with a folded bias column.
    interfaceWeights_ = randomWeights(cfg_.interfaceDim(),
                                      cfg_.hiddenDim() + 1, rng_);
    reset();
}

void
Dnc::reset()
{
    memory_.reset();
    controller_->reset();
    usage_.assign(cfg_.memN, 0.0f);
    precedence_.assign(cfg_.memN, 0.0f);
    link_.fill(0.0f);
    prevWriteWeights_.assign(cfg_.memN, 0.0f);
    prevReadWeights_.assign(cfg_.numReadHeads,
                            FVec(cfg_.memN, 0.0f));
    prevReads_.assign(cfg_.numReadHeads, FVec(cfg_.memM, 0.0f));
}

namespace
{

/** oneplus(x) = 1 + softplus(x), the DNC's strength squashing. */
float
oneplus(float x)
{
    return 1.0f + tensor::softplusScalar(x);
}

} // namespace

void
Dnc::updateUsage(const DncInterface &iface)
{
    // Retention: psi = prod_i (1 - f_i * w^r_i,{t-1}).
    FVec psi(cfg_.memN, 1.0f);
    for (std::size_t h = 0; h < cfg_.numReadHeads; ++h) {
        const float f = iface.readHeads[h].freeGate;
        for (std::size_t i = 0; i < cfg_.memN; ++i)
            psi[i] *= 1.0f - f * prevReadWeights_[h][i];
    }
    // u_t = (u_{t-1} + w^w_{t-1} - u_{t-1} o w^w_{t-1}) o psi.
    for (std::size_t i = 0; i < cfg_.memN; ++i) {
        const float u = usage_[i];
        const float w = prevWriteWeights_[i];
        usage_[i] = (u + w - u * w) * psi[i];
    }
}

FVec
dncAllocationFromUsage(const FVec &usage)
{
    const std::size_t n = usage.size();
    // Free list: locations sorted by ascending usage. The sort key is
    // quantized so that the ordering — which is discontinuous in the
    // usage values — is robust to floating-point reassociation noise
    // between implementations (golden model vs the blocked datapath
    // on Manna); ties resolve by location index via the stable sort.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    auto key = [&usage](std::size_t i) {
        return std::lround(static_cast<double>(usage[i]) * 4096.0);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&key](std::size_t a, std::size_t b) {
                         return key(a) < key(b);
                     });
    FVec alloc(n, 0.0f);
    float used = 1.0f; // running product of usage over freer slots
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t slot = order[j];
        alloc[slot] = (1.0f - usage[slot]) * used;
        used *= usage[slot];
    }
    return alloc;
}

FVec
Dnc::allocationWeighting() const
{
    return dncAllocationFromUsage(usage_);
}

void
Dnc::updateLinkage(const FVec &writeWeights)
{
    // L_t[i][j] = (1 - w[i] - w[j]) L_{t-1}[i][j] + w[i] p_{t-1}[j].
    for (std::size_t i = 0; i < cfg_.memN; ++i) {
        const float wi = writeWeights[i];
        float *row = link_.data().data() + i * cfg_.memN;
        for (std::size_t j = 0; j < cfg_.memN; ++j) {
            row[j] = (1.0f - wi - writeWeights[j]) * row[j] +
                     wi * precedence_[j];
        }
        row[i] = 0.0f; // zero diagonal
    }
    // p_t = (1 - sum(w)) p_{t-1} + w.
    const float total = tensor::sum(writeWeights);
    for (std::size_t j = 0; j < cfg_.memN; ++j)
        precedence_[j] = (1.0f - total) * precedence_[j] +
                         writeWeights[j];
}

DncStepTrace
Dnc::step(const FVec &input)
{
    MANNA_ASSERT(input.size() == cfg_.inputDim,
                 "DNC input %zu != %zu", input.size(), cfg_.inputDim);
    DncStepTrace trace;

    // Controller.
    std::vector<FVec> parts{input};
    for (const auto &r : prevReads_)
        parts.push_back(r);
    const ControllerOutput ctrl =
        controller_->forward(tensor::concat(parts));
    trace.output = ctrl.output;

    // Interface projection (augmented-bias convention as on Manna).
    FVec hidden = ctrl.hidden;
    hidden.push_back(1.0f);
    const FVec raw = tensor::matVecMul(interfaceWeights_, hidden);

    // Decode.
    DncInterface iface;
    std::size_t off = 0;
    for (std::size_t h = 0; h < cfg_.numReadHeads; ++h) {
        DncInterface::ReadHead head;
        head.key = tensor::slice(raw, off, cfg_.memM);
        off += cfg_.memM;
        head.strength = oneplus(raw[off++]);
        head.freeGate = tensor::sigmoidScalar(raw[off++]);
        head.modes = tensor::softmax(tensor::slice(raw, off, 3));
        off += 3;
        iface.readHeads.push_back(std::move(head));
    }
    iface.writeKey = tensor::slice(raw, off, cfg_.memM);
    off += cfg_.memM;
    iface.writeStrength = oneplus(raw[off++]);
    iface.eraseVec = tensor::sigmoid(tensor::slice(raw, off, cfg_.memM));
    off += cfg_.memM;
    iface.writeVec = tensor::tanhVec(tensor::slice(raw, off, cfg_.memM));
    off += cfg_.memM;
    iface.allocationGate = tensor::sigmoidScalar(raw[off++]);
    iface.writeGate = tensor::sigmoidScalar(raw[off++]);
    MANNA_ASSERT(off == cfg_.interfaceDim(),
                 "DNC decode consumed %zu of %zu", off,
                 cfg_.interfaceDim());

    // Dynamic allocation.
    updateUsage(iface);
    const FVec alloc = allocationWeighting();

    // Write weighting: w^w = g_w (g_a a + (1 - g_a) c^w).
    const FVec contentW =
        contentWeighting(memory_.matrix(), iface.writeKey,
                         iface.writeStrength, cfg_.similarityEpsilon);
    FVec writeW(cfg_.memN);
    for (std::size_t i = 0; i < cfg_.memN; ++i)
        writeW[i] = iface.writeGate *
                    (iface.allocationGate * alloc[i] +
                     (1.0f - iface.allocationGate) * contentW[i]);

    // Write, then linkage (Graves et al. update linkage with w^w_t).
    memory_.softWrite(writeW, iface.eraseVec, iface.writeVec);
    updateLinkage(writeW);

    // Read weightings: backward/content/forward mix.
    trace.readWeights.resize(cfg_.numReadHeads);
    trace.readVectors.resize(cfg_.numReadHeads);
    for (std::size_t h = 0; h < cfg_.numReadHeads; ++h) {
        const auto &head = iface.readHeads[h];
        const FVec content =
            contentWeighting(memory_.matrix(), head.key,
                             head.strength, cfg_.similarityEpsilon);
        // forward = L w_prev; backward = L^T w_prev.
        const FVec forward =
            tensor::matVecMul(link_, prevReadWeights_[h]);
        const FVec backward =
            tensor::vecMatMul(prevReadWeights_[h], link_);
        FVec w(cfg_.memN);
        for (std::size_t i = 0; i < cfg_.memN; ++i)
            w[i] = head.modes[0] * backward[i] +
                   head.modes[1] * content[i] +
                   head.modes[2] * forward[i];
        trace.readVectors[h] = memory_.softRead(w);
        trace.readWeights[h] = std::move(w);
    }

    // Persist state.
    prevWriteWeights_ = writeW;
    prevReadWeights_ = trace.readWeights;
    prevReads_ = trace.readVectors;

    trace.interface = std::move(iface);
    trace.usage = usage_;
    trace.allocation = alloc;
    trace.writeWeights = std::move(writeW);
    return trace;
}

std::vector<FVec>
Dnc::run(const std::vector<FVec> &inputs)
{
    std::vector<FVec> outputs;
    outputs.reserve(inputs.size());
    for (const auto &x : inputs)
        outputs.push_back(step(x).output);
    return outputs;
}

Dnc::DncWork
Dnc::stepWork() const
{
    const std::uint64_t n = cfg_.memN;
    DncWork work{};
    work.usageOps = (cfg_.numReadHeads + 3) * n;
    work.allocationOps =
        n * static_cast<std::uint64_t>(
                std::max<std::uint32_t>(log2Ceil(n), 1)) +
        2 * n;
    work.linkUpdateOps = 4 * n * n + 2 * n;
    work.linkReadOps = 2 * n * n * cfg_.numReadHeads;
    return work;
}

} // namespace manna::mann
