/**
 * @file
 * Read/write heads (Section 2.2.1): each head owns a weight matrix
 * that projects the controller's hidden state onto the parameters of
 * the attention mechanism (key, beta, gate, shift, gamma, and for
 * write heads erase/add vectors).
 */

#ifndef MANNA_MANN_HEAD_HH
#define MANNA_MANN_HEAD_HH

#include <vector>

#include "common/rng.hh"
#include "mann/mann_config.hh"
#include "tensor/matrix.hh"

namespace manna::mann
{

using tensor::FMat;
using tensor::FVec;

/** Decoded head parameters after their squashing nonlinearities. */
struct HeadParams
{
    FVec key;    ///< content key k_h^t (memM)
    float beta;  ///< similarity amplification (softplus, > 0)
    float gate;  ///< interpolation gate g_h^t in (0, 1)
    FVec shift;  ///< rotation kernel s_h^t (softmax over taps)
    float gamma; ///< sharpening exponent (1 + softplus, >= 1)
    FVec erase;  ///< erase vector e_h^t in (0, 1)^memM (write heads)
    FVec addVec; ///< add vector a_h^t (write heads)
};

/**
 * One attention head.
 *
 * The raw projection h -> W_h * hidden + b is decoded into HeadParams
 * with the standard NTM squashing functions:
 *   beta = softplus(raw), gate = sigmoid(raw),
 *   shift = softmax(raw taps), gamma = 1 + softplus(raw),
 *   erase = sigmoid(raw), add = tanh(raw).
 */
class Head
{
  public:
    /** @p isWrite selects the wider write-head parameter layout. */
    Head(const MannConfig &cfg, bool isWrite, Rng &rng);

    /** Project and decode the hidden state into head parameters. */
    HeadParams emit(const FVec &hidden) const;

    /**
     * Decode an already-computed raw projection. Exposed so the
     * simulator's functional path can share the exact decode logic.
     */
    HeadParams decode(const FVec &raw) const;

    bool isWrite() const { return isWrite_; }

    /** Raw projection width (readHeadParamDim or writeHeadParamDim). */
    std::size_t paramDim() const { return weights_.rows(); }

    const FMat &weights() const { return weights_; }
    const FVec &bias() const { return bias_; }

  private:
    const MannConfig cfg_;
    bool isWrite_;
    FMat weights_; ///< paramDim x hiddenDim
    FVec bias_;
};

} // namespace manna::mann

#endif // MANNA_MANN_HEAD_HH
