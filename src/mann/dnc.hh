/**
 * @file
 * Differentiable Neural Computer (DNC) functional model.
 *
 * The paper positions Manna as programmable across "a broad class of
 * MANNs (e.g., NTMs and DNCs from Google Deepmind)". This module
 * implements the DNC's addressing machinery (Graves et al., Nature
 * 2016) as a golden functional model:
 *
 *  - dynamic memory allocation via a usage vector and free list,
 *  - temporal linkage: a precedence vector and an N x N link matrix
 *    recording write order, giving forward/backward read modes,
 *  - content addressing shared with the NTM implementation,
 *  - a single write head with erase/write vectors and allocation /
 *    write gates; multiple read heads with three-way read modes.
 *
 * The link-matrix kernels are O(memN^2) per step — a different
 * roofline point than the NTM's O(memN * memM) kernels — so the
 * module also provides an analytic work model for them (used by the
 * dnc_memory example to show where a DNC stresses Manna differently).
 */

#ifndef MANNA_MANN_DNC_HH
#define MANNA_MANN_DNC_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "mann/controller.hh"
#include "mann/memory.hh"

namespace manna::mann
{

/** Shape description of a DNC. */
struct DncConfig
{
    std::size_t memN = 64;  ///< memory locations
    std::size_t memM = 32;  ///< word width
    std::size_t numReadHeads = 2;
    std::size_t controllerLayers = 1;
    std::size_t controllerWidth = 64;
    ControllerKind controllerKind = ControllerKind::MLP;
    std::size_t inputDim = 8;
    std::size_t outputDim = 8;
    float similarityEpsilon = 1e-8f;

    /**
     * Width of the interface vector emitted per step:
     * per read head: key (M) + strength (1) + free gate (1) +
     *                read modes (3);
     * write: key (M) + strength (1) + erase (M) + write vec (M) +
     *        allocation gate (1) + write gate (1).
     */
    std::size_t interfaceDim() const
    {
        return numReadHeads * (memM + 5) + 3 * memM + 3;
    }

    std::size_t controllerInputDim() const
    {
        return inputDim + numReadHeads * memM;
    }
    std::size_t hiddenDim() const { return controllerWidth; }

    void validate() const;
};

/** Decoded DNC interface for one step. */
struct DncInterface
{
    struct ReadHead
    {
        FVec key;      ///< memM
        float strength; ///< >= 1 via 1 + softplus (oneplus)
        float freeGate; ///< in (0,1)
        FVec modes;     ///< softmax over {backward, content, forward}
    };
    std::vector<ReadHead> readHeads;
    FVec writeKey;
    float writeStrength = 1.0f;
    FVec eraseVec;
    FVec writeVec;
    float allocationGate = 0.0f;
    float writeGate = 0.0f;
};

/** Observable state of one DNC step (for tests). */
struct DncStepTrace
{
    FVec output;
    DncInterface interface;
    FVec usage;                ///< u_t, in [0,1]^N
    FVec allocation;           ///< a_t
    FVec writeWeights;         ///< w^w_t
    std::vector<FVec> readWeights;
    std::vector<FVec> readVectors;
};

/**
 * The DNC with synthetic weights.
 */
class Dnc
{
  public:
    explicit Dnc(const DncConfig &cfg, std::uint64_t seed = 1);

    void reset();

    DncStepTrace step(const FVec &input);

    std::vector<FVec> run(const std::vector<FVec> &inputs);

    const DncConfig &config() const { return cfg_; }
    const ExternalMemory &memory() const { return memory_; }
    const FVec &usage() const { return usage_; }
    const FVec &precedence() const { return precedence_; }
    const tensor::FMat &linkMatrix() const { return link_; }
    Controller &controller() { return *controller_; }

    /** Interface projection (interfaceDim x hidden+1, bias folded);
     * the DNC-on-Manna chip loads slices of this onto the tiles. */
    const tensor::FMat &interfaceWeights() const
    {
        return interfaceWeights_;
    }

    /**
     * Analytic per-step operation counts of the DNC-specific kernels
     * (the pieces beyond the NTM's): usage/allocation O(N log N for
     * the sort, N otherwise), link matrix update and the two
     * link-matrix-vector products O(N^2) per read head.
     */
    struct DncWork
    {
        std::uint64_t usageOps;
        std::uint64_t allocationOps;
        std::uint64_t linkUpdateOps;
        std::uint64_t linkReadOps;
    };
    DncWork stepWork() const;

  private:
    /** Usage update (free gates then write reservation). */
    void updateUsage(const DncInterface &iface);

    /** Allocation weighting from the sorted free list. */
    FVec allocationWeighting() const;

    /** Temporal link matrix and precedence update. */
    void updateLinkage(const FVec &writeWeights);

    DncConfig cfg_;
    Rng rng_;
    std::unique_ptr<Controller> controller_;
    tensor::FMat interfaceWeights_; ///< interfaceDim x (hidden + 1)
    ExternalMemory memory_;

    FVec usage_;
    FVec precedence_;
    tensor::FMat link_; ///< memN x memN, zero diagonal
    FVec prevWriteWeights_;
    std::vector<FVec> prevReadWeights_;
    std::vector<FVec> prevReads_;
};

/**
 * The DNC allocation weighting (free-list scan over usage). Shared
 * verbatim by the golden model and the DNC-on-Manna chip (which
 * evaluates it at the Controller tile), so the two implementations
 * are bit-identical.
 */
FVec dncAllocationFromUsage(const FVec &usage);

} // namespace manna::mann

#endif // MANNA_MANN_DNC_HH
