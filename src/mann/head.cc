#include "head.hh"

#include <cmath>

#include "common/logging.hh"
#include "mann/controller.hh"
#include "tensor/vector_ops.hh"

namespace manna::mann
{

Head::Head(const MannConfig &cfg, bool isWrite, Rng &rng)
    : cfg_(cfg), isWrite_(isWrite),
      weights_(randomWeights(isWrite ? cfg.writeHeadParamDim()
                                     : cfg.readHeadParamDim(),
                             cfg.hiddenDim(), rng)),
      bias_(randomBias(weights_.rows(), rng))
{
}

HeadParams
Head::emit(const FVec &hidden) const
{
    return decode(tensor::matVecMulBias(weights_, hidden, bias_));
}

HeadParams
Head::decode(const FVec &raw) const
{
    MANNA_ASSERT(raw.size() == paramDim(),
                 "head raw projection %zu != paramDim %zu", raw.size(),
                 paramDim());

    const std::size_t m = cfg_.memM;
    const std::size_t taps = cfg_.shiftTaps();

    HeadParams p;
    std::size_t off = 0;
    p.key = tensor::slice(raw, off, m);
    off += m;
    p.beta = tensor::softplusScalar(raw[off++]);
    p.gate = tensor::sigmoidScalar(raw[off++]);
    p.shift = tensor::softmax(tensor::slice(raw, off, taps));
    off += taps;
    p.gamma = 1.0f + tensor::softplusScalar(raw[off++]);
    if (isWrite_) {
        p.erase = tensor::sigmoid(tensor::slice(raw, off, m));
        off += m;
        p.addVec = tensor::tanhVec(tensor::slice(raw, off, m));
        off += m;
    }
    MANNA_ASSERT(off == raw.size(), "head decode consumed %zu of %zu",
                 off, raw.size());
    return p;
}

} // namespace manna::mann
