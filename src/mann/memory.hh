/**
 * @file
 * The differentiable external memory and its soft access kernels
 * (Eqs. 1-3). These are the paper's "access kernels" (Table 1), each
 * touching every element of the memory: O(memN * memM) per head.
 */

#ifndef MANNA_MANN_MEMORY_HH
#define MANNA_MANN_MEMORY_HH

#include "common/rng.hh"
#include "tensor/matrix.hh"

namespace manna::mann
{

using tensor::FMat;
using tensor::FVec;

/**
 * Differentiable external memory M of memN rows x memM columns with
 * the NTM's soft read and soft write operations.
 */
class ExternalMemory
{
  public:
    ExternalMemory(std::size_t memN, std::size_t memM);

    std::size_t rows() const { return mat_.rows(); }
    std::size_t cols() const { return mat_.cols(); }

    const FMat &matrix() const { return mat_; }
    FMat &matrix() { return mat_; }

    /** Reset contents to a small constant (standard NTM init). */
    void reset(float value = 1e-6f);

    /** Fill with small random values (for randomized tests). */
    void randomize(Rng &rng, float scale = 0.1f);

    /**
     * Soft read (Eq. 1): r = w^T * M, a weighted sum over all rows.
     */
    FVec softRead(const FVec &w) const;

    /** Allocation-free twin of softRead(): bit-identical result
     * written into @p out (resized to memM). @p out must not alias
     * @p w. */
    void softReadInto(const FVec &w, FVec &out) const;

    /**
     * Soft write (Eqs. 2-3): erase then add, applied to every row:
     *   M'(i)  = M(i) o (1 - w(i) * e)
     *   M+(i)  = M'(i) + w(i) * a
     */
    void softWrite(const FVec &w, const FVec &erase, const FVec &add);

  private:
    FMat mat_;
};

} // namespace manna::mann

#endif // MANNA_MANN_MEMORY_HH
