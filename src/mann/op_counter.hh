/**
 * @file
 * Analytic operation and memory-access counting for NTM kernels.
 *
 * This reproduces the paper's workload characterization: Table 1
 * (per-kernel primitive, memory accesses, FLOPs/Byte, reduction
 * direction), Figure 3 (MAC vs element-wise operation mix), and the
 * per-kernel work quantities the GPU/CPU baseline models consume.
 */

#ifndef MANNA_MANN_OP_COUNTER_HH
#define MANNA_MANN_OP_COUNTER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mann/mann_config.hh"

namespace manna::mann
{

/** The NTM kernels the paper distinguishes (Table 1 + controller). */
enum class Kernel
{
    Controller,        ///< the DNN controller network
    Heads,             ///< read/write head projections
    KeySimilarity,     ///< Eq. 4 (row-wise vector-matrix)
    ContentWeighting,  ///< Eq. 5 (softmax normalization)
    Interpolation,     ///< Eq. 6 (element-wise blend)
    ShiftWeighting,    ///< Eq. 7 (circular convolution)
    Sharpening,        ///< Eq. 8 (power + normalization)
    SoftRead,          ///< Eq. 1 (column-wise vector-matrix)
    SoftWrite,         ///< Eqs. 2-3 (element-wise update)
};

constexpr std::size_t kNumKernels = 9;

/** All kernels in canonical order. */
const std::array<Kernel, kNumKernels> &allKernels();

/** Printable kernel name matching the paper's terminology. */
const char *toString(Kernel k);

/** Kernel groups used in Figures 2 and 10. */
enum class KernelGroup
{
    Controller,
    Heads,
    Addressing, ///< content weighting + interpolation + shift + sharpen
    KeySimilarity,
    SoftRead,
    SoftWrite,
};

constexpr std::size_t kNumKernelGroups = 6;
const std::array<KernelGroup, kNumKernelGroups> &allKernelGroups();
const char *toString(KernelGroup g);
KernelGroup groupOf(Kernel k);

/** Operation-count breakdown of one kernel for one time step. */
struct KernelWork
{
    std::uint64_t macOps = 0;     ///< fused multiply-accumulate ops
    std::uint64_t elwiseOps = 0;  ///< non-reductive mul/add/sub
    std::uint64_t specialOps = 0; ///< exp/pow/div/sqrt (SFU class)
    std::uint64_t memReads = 0;   ///< FP32 words read
    std::uint64_t memWrites = 0;  ///< FP32 words written

    /** Total arithmetic operations (each MAC counted as 2 FLOPs). */
    std::uint64_t flops() const
    {
        return 2 * macOps + elwiseOps + specialOps;
    }

    std::uint64_t bytesTouched() const
    {
        return 4 * (memReads + memWrites);
    }

    /** FLOPs per byte of memory traffic. */
    double flopsPerByte() const;

    /**
     * Exposed data parallelism: the number of independent lanes this
     * kernel offers a wide machine (used by the GPU utilization
     * model).
     */
    std::uint64_t parallelism = 1;

    KernelWork &operator+=(const KernelWork &o);
};

/**
 * Analytic work model for an NTM configuration, per time step.
 *
 * Counts follow directly from Eqs. 1-8 and the controller/head
 * matrix shapes; see the .cc for the per-kernel derivations.
 */
class OpCounter
{
  public:
    explicit OpCounter(const MannConfig &cfg);

    /** Work of one kernel for a single time step (all heads). */
    KernelWork kernelWork(Kernel k) const;

    /** Sum over a kernel group. */
    KernelWork groupWork(KernelGroup g) const;

    /** Sum over all kernels. */
    KernelWork totalWork() const;

    /** Sum over the non-controller ("runtime-intensive") kernels. */
    KernelWork nonControllerWork() const;

    /**
     * Fraction of MAC vs element-wise vs special operations across
     * the non-controller kernels (Figure 3).
     */
    struct OperationMix
    {
        double macFraction;
        double elwiseFraction;
        double specialFraction;
    };
    OperationMix operationMix() const;

    /**
     * Asymptotic memory-access expression for Table 1, e.g.
     * "O(Mn*Mm*(Hr+Hw))".
     */
    static std::string accessExpression(Kernel k);

    /** The "Key Primitive" column of Table 1. */
    static std::string primitiveName(Kernel k);

    /** The "Reduction" column of Table 1. */
    static std::string reductionDirection(Kernel k);

    /**
     * The paper's symbolic FLOPs/Byte entry for Table 1 (e.g.
     * "Hr+Hw", "3", "S").
     */
    static std::string symbolicFlopsPerByte(Kernel k);

    const MannConfig &config() const { return cfg_; }

  private:
    MannConfig cfg_;
};

} // namespace manna::mann

#endif // MANNA_MANN_OP_COUNTER_HH
