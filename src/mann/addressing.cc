#include "addressing.hh"

#include "common/logging.hh"
#include "tensor/vector_ops.hh"

namespace manna::mann
{

FVec
contentWeighting(const FMat &memory, const FVec &key, float beta,
                 float epsilon)
{
    const FVec sim = tensor::rowCosineSimilarity(memory, key, epsilon);
    return tensor::softmax(sim, beta);
}

FVec
interpolate(const FVec &wc, const FVec &wPrev, float gate)
{
    MANNA_ASSERT(wc.size() == wPrev.size(),
                 "interpolate size mismatch %zu vs %zu", wc.size(),
                 wPrev.size());
    FVec out(wc.size());
    for (std::size_t i = 0; i < wc.size(); ++i)
        out[i] = gate * wc[i] + (1.0f - gate) * wPrev[i];
    return out;
}

FVec
shiftWeighting(const FVec &wg, const FVec &shift)
{
    return tensor::circularConvolve(wg, shift);
}

FVec
sharpenWeighting(const FVec &ws, float gamma)
{
    return tensor::sharpen(ws, gamma);
}

FVec
addressHead(const FMat &memory, const HeadParams &params,
            const FVec &wPrev, float epsilon)
{
    AddressingScratch scratch;
    FVec out;
    addressHeadInto(memory, params, wPrev, epsilon, scratch, out);
    return out;
}

void
addressHeadInto(const FMat &memory, const HeadParams &params,
                const FVec &wPrev, float epsilon,
                AddressingScratch &scratch, FVec &out)
{
    tensor::rowCosineSimilarityInto(memory, params.key, epsilon,
                                    scratch.sim);
    tensor::softmaxInto(scratch.sim, params.beta, scratch.wc);

    MANNA_ASSERT(scratch.wc.size() == wPrev.size(),
                 "interpolate size mismatch %zu vs %zu",
                 scratch.wc.size(), wPrev.size());
    scratch.wg.resize(scratch.wc.size());
    for (std::size_t i = 0; i < scratch.wc.size(); ++i)
        scratch.wg[i] = params.gate * scratch.wc[i] +
                        (1.0f - params.gate) * wPrev[i];

    tensor::circularConvolveInto(scratch.wg, params.shift, scratch.ws);
    tensor::sharpenInto(scratch.ws, params.gamma, out);
}

} // namespace manna::mann
