#include "memory.hh"

#include "common/logging.hh"
#include "tensor/vector_ops.hh"

namespace manna::mann
{

ExternalMemory::ExternalMemory(std::size_t memN, std::size_t memM)
    : mat_(memN, memM)
{
    reset();
}

void
ExternalMemory::reset(float value)
{
    mat_.fill(value);
}

void
ExternalMemory::randomize(Rng &rng, float scale)
{
    for (auto &v : mat_.data())
        v = static_cast<float>(rng.gaussian(0.0, scale));
}

FVec
ExternalMemory::softRead(const FVec &w) const
{
    FVec out;
    softReadInto(w, out);
    return out;
}

void
ExternalMemory::softReadInto(const FVec &w, FVec &out) const
{
    MANNA_ASSERT(w.size() == mat_.rows(),
                 "softRead weight length %zu != memN %zu", w.size(),
                 mat_.rows());
    tensor::vecMatMulInto(w, mat_, out);
}

void
ExternalMemory::softWrite(const FVec &w, const FVec &erase,
                          const FVec &add)
{
    MANNA_ASSERT(w.size() == mat_.rows(),
                 "softWrite weight length %zu != memN %zu", w.size(),
                 mat_.rows());
    MANNA_ASSERT(erase.size() == mat_.cols() && add.size() == mat_.cols(),
                 "softWrite vector widths %zu/%zu != memM %zu",
                 erase.size(), add.size(), mat_.cols());

    const std::size_t cols = mat_.cols();
    for (std::size_t r = 0; r < mat_.rows(); ++r) {
        const float wi = w[r];
        float *row = mat_.data().data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            row[c] = row[c] * (1.0f - wi * erase[c]) + wi * add[c];
        }
    }
}

} // namespace manna::mann
