/**
 * @file
 * End-to-End Memory Network (MemN2N, Sukhbaatar et al. 2015)
 * functional model.
 *
 * The paper's related-work section (Section 8) contrasts Manna with
 * fixed-function MemNet accelerators (MnnFast, the DATE'19 FPGA
 * design): MemNets never perform soft *writes* — their memory is
 * written once per episode and then only soft-read — so those
 * accelerators (i) need no element-wise write datapath and (ii) can
 * afford to store a second, transposed copy of the memory instead of
 * transposing on chip. This module implements MemN2N so those claims
 * can be demonstrated quantitatively (see bench/sec8_memnet_contrast
 * and the analytic work model below).
 */

#ifndef MANNA_MANN_MEMNET_HH
#define MANNA_MANN_MEMNET_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "tensor/matrix.hh"

namespace manna::mann
{

using tensor::FMat;
using tensor::FVec;

/** Shape of a MemN2N. */
struct MemNetConfig
{
    std::size_t numSentences = 64; ///< memory slots per episode
    std::size_t sentenceDim = 32;  ///< bag-of-words input width
    std::size_t embedDim = 32;     ///< internal embedding width
    std::size_t hops = 3;          ///< attention hops
    std::size_t answerDim = 16;

    void validate() const;
};

/** Trace of one query (for tests). */
struct MemNetTrace
{
    FVec answer;
    /** Attention distribution per hop (each sums to 1). */
    std::vector<FVec> attentions;
};

/**
 * MemN2N with synthetic weights.
 *
 * Per episode: every sentence x_i is embedded twice (input memory
 * m_i = A x_i, output memory c_i = C x_i). Per query: u = B q, then
 * `hops` rounds of p = softmax(m u), o = Σ p_i c_i, u <- H u + o,
 * and finally answer = W u. There are no writes to m/c after loading
 * — the property the fixed-function MemNet accelerators exploit.
 */
class MemNet
{
  public:
    MemNet(const MemNetConfig &cfg, std::uint64_t seed = 1);

    /** Load an episode: one bag-of-words vector per sentence. */
    void loadEpisode(const std::vector<FVec> &sentences);

    /** Answer a query against the loaded episode. */
    MemNetTrace answer(const FVec &query) const;

    const MemNetConfig &config() const { return cfg_; }
    const FMat &inputMemory() const { return inputMem_; }
    const FMat &outputMemory() const { return outputMem_; }

    /**
     * Analytic per-query operation profile, for the Section 8
     * comparison against the NTM/DNC: MemN2N access kernels are pure
     * MAC (no element-wise write update), and the memory is static
     * per episode.
     */
    struct QueryWork
    {
        std::uint64_t macOps;
        std::uint64_t elwiseOps; ///< residual adds only (O(d * hops))
        std::uint64_t specialOps;
        std::uint64_t memWriteOps; ///< soft-write ops: always zero
    };
    QueryWork queryWork() const;

  private:
    MemNetConfig cfg_;
    FMat embedA_; ///< embedDim x sentenceDim (input memory)
    FMat embedC_; ///< embedDim x sentenceDim (output memory)
    FMat embedB_; ///< embedDim x sentenceDim (query)
    FMat hopH_;   ///< embedDim x embedDim (state transform)
    FMat answerW_; ///< answerDim x embedDim

    FMat inputMem_;  ///< numSentences x embedDim (m_i rows)
    FMat outputMem_; ///< numSentences x embedDim (c_i rows)
    bool loaded_ = false;
};

} // namespace manna::mann

#endif // MANNA_MANN_MEMNET_HH
