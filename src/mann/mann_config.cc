#include "mann_config.hh"

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace manna::mann
{

const char *
toString(ControllerKind kind)
{
    switch (kind) {
      case ControllerKind::MLP:
        return "MLP";
      case ControllerKind::LSTM:
        return "LSTM";
    }
    return "?";
}

void
MannConfig::validate() const
{
    if (memN == 0 || memM == 0)
        fatal("MANN memory dimensions must be nonzero (%zu x %zu)", memN,
              memM);
    if (controllerLayers == 0 || controllerWidth == 0)
        fatal("controller dimensions must be nonzero (%zu x %zu)",
              controllerLayers, controllerWidth);
    if (numReadHeads == 0)
        fatal("at least one read head is required");
    if (numWriteHeads == 0)
        fatal("at least one write head is required");
    if (inputDim == 0 || outputDim == 0)
        fatal("input/output dimensions must be nonzero");
    if (shiftRadius >= memN)
        fatal("shift radius %zu must be smaller than memN %zu",
              shiftRadius, memN);
}

std::uint64_t
MannConfig::fingerprint() const
{
    // Every field, in declaration order (see
    // arch::MannaConfig::fingerprint for the aliasing caveat).
    Fnv1a h;
    h.u64(memN)
        .u64(memM)
        .u64(controllerLayers)
        .u64(controllerWidth)
        .u64(static_cast<std::uint64_t>(controllerKind))
        .u64(inputDim)
        .u64(outputDim)
        .u64(numReadHeads)
        .u64(numWriteHeads)
        .u64(shiftRadius)
        .f64(static_cast<double>(similarityEpsilon));
    return h.value();
}

std::string
MannConfig::summary() const
{
    return strformat(
        "mem %zux%zu, controller %s %zux%zu, heads %zuR/%zuW, "
        "in/out %zu/%zu, shift radius %zu",
        memN, memM, toString(controllerKind), controllerLayers,
        controllerWidth, numReadHeads, numWriteHeads, inputDim, outputDim,
        shiftRadius);
}

} // namespace manna::mann
