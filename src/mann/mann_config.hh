/**
 * @file
 * Hyper-parameter description of a memory-augmented neural network.
 * This is the "description of the target MANN" the paper's compiler
 * consumes (Section 5.2), and what the golden functional model is
 * constructed from.
 */

#ifndef MANNA_MANN_MANN_CONFIG_HH
#define MANNA_MANN_MANN_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace manna::mann
{

/** Controller network family. */
enum class ControllerKind
{
    MLP,  ///< feed-forward, tanh activations
    LSTM, ///< single-cell-per-layer LSTM stack
};

/** Printable name. */
const char *toString(ControllerKind kind);

/**
 * Complete shape description of an NTM-style MANN.
 *
 * Table 2 of the paper is expressed as instances of this struct
 * (see workloads/benchmarks.hh).
 */
struct MannConfig
{
    /** Differentiable external memory: memN rows x memM columns. */
    std::size_t memN = 128;
    std::size_t memM = 32;

    /** Controller: layers x width, as in Table 2 ("1x100"). */
    std::size_t controllerLayers = 1;
    std::size_t controllerWidth = 100;
    ControllerKind controllerKind = ControllerKind::MLP;

    /** External input/output vector widths. */
    std::size_t inputDim = 16;
    std::size_t outputDim = 16;

    /** Head counts. */
    std::size_t numReadHeads = 1;
    std::size_t numWriteHeads = 1;

    /** Shift kernel radius R; the kernel has 2R + 1 taps (Eq. 7). */
    std::size_t shiftRadius = 1;

    /** Epsilon guarding cosine similarity against zero vectors. */
    float similarityEpsilon = 1e-8f;

    /** Number of shift-kernel taps. */
    std::size_t shiftTaps() const { return 2 * shiftRadius + 1; }

    /**
     * Per-head emitted parameter widths (Section 2.2.1): a read head
     * emits {key (memM), beta (1), gate (1), shift (taps), gamma (1)};
     * a write head additionally emits {erase (memM), add (memM)}.
     */
    std::size_t readHeadParamDim() const
    {
        return memM + 3 + shiftTaps();
    }
    std::size_t writeHeadParamDim() const
    {
        return readHeadParamDim() + 2 * memM;
    }

    /** Controller hidden-state width (input to the heads). */
    std::size_t hiddenDim() const { return controllerWidth; }

    /** Width of the controller input: external input + read vectors. */
    std::size_t controllerInputDim() const
    {
        return inputDim + numReadHeads * memM;
    }

    /** External memory footprint in bytes (FP32 words). */
    std::size_t memoryBytes() const { return memN * memM * 4; }

    /** Sanity-check the configuration; calls fatal() on bad shapes. */
    void validate() const;

    /** Stable fingerprint over every field (compile-cache key). */
    std::uint64_t fingerprint() const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

} // namespace manna::mann

#endif // MANNA_MANN_MANN_CONFIG_HH
