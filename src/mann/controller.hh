/**
 * @file
 * DNN controller networks for the golden NTM model (Section 2.2.1).
 *
 * The controller consumes the external input concatenated with the
 * previous time step's read vectors and produces (i) a hidden state
 * vector for the heads and (ii) the NTM output vector.
 */

#ifndef MANNA_MANN_CONTROLLER_HH
#define MANNA_MANN_CONTROLLER_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "mann/mann_config.hh"
#include "tensor/matrix.hh"

namespace manna::mann
{

using tensor::FMat;
using tensor::FVec;

/** Output of one controller forward pass. */
struct ControllerOutput
{
    FVec hidden; ///< hidden-state vector consumed by the heads
    FVec output; ///< NTM output vector at this time step
};

/**
 * Abstract controller interface.
 *
 * Implementations own their weights and (for recurrent controllers)
 * their internal state.
 */
class Controller
{
  public:
    virtual ~Controller() = default;

    /** Forward pass. @p input has controllerInputDim() elements. */
    virtual ControllerOutput forward(const FVec &input) = 0;

    /** Reset recurrent state (no-op for feedforward controllers). */
    virtual void reset() = 0;

    /** Total trainable parameter count (for footprint accounting). */
    virtual std::size_t parameterCount() const = 0;

    /** Weight matrices in layer order (for loading onto Manna). */
    virtual std::vector<const FMat *> weightMatrices() const = 0;
};

/**
 * Feed-forward controller: controllerLayers dense layers of
 * controllerWidth units with tanh activations, plus a linear output
 * projection to outputDim.
 */
class MlpController : public Controller
{
  public:
    MlpController(const MannConfig &cfg, Rng &rng);

    ControllerOutput forward(const FVec &input) override;
    void reset() override {}
    std::size_t parameterCount() const override;
    std::vector<const FMat *> weightMatrices() const override;

  private:
    std::vector<FMat> layers_;  ///< layer weight matrices
    std::vector<FVec> biases_;  ///< layer biases
    FMat outputWeights_;        ///< hidden -> output projection
    FVec outputBias_;
};

/**
 * Stacked-LSTM controller. Each layer is a standard LSTM cell; the
 * last layer's hidden state feeds the heads and the output projection.
 */
class LstmController : public Controller
{
  public:
    LstmController(const MannConfig &cfg, Rng &rng);

    ControllerOutput forward(const FVec &input) override;
    void reset() override;
    std::size_t parameterCount() const override;
    std::vector<const FMat *> weightMatrices() const override;

  private:
    struct Layer
    {
        // Gates packed as [i; f; g; o], each width rows.
        FMat inputWeights;  ///< 4*width x layerInputDim
        FMat hiddenWeights; ///< 4*width x width
        FVec bias;          ///< 4*width
        FVec h;             ///< hidden state
        FVec c;             ///< cell state
    };

    std::size_t width_;
    std::vector<Layer> layers_;
    FMat outputWeights_;
    FVec outputBias_;
};

/** Factory dispatching on cfg.controllerKind. */
std::unique_ptr<Controller> makeController(const MannConfig &cfg,
                                           Rng &rng);

/**
 * Draw an initialized weight matrix (Xavier-style scaling) from
 * @p rng. Shared by controllers and heads so synthetic models stay in
 * a numerically well-behaved regime.
 */
FMat randomWeights(std::size_t rows, std::size_t cols, Rng &rng);

/** Zero-mean small random bias vector. */
FVec randomBias(std::size_t n, Rng &rng);

} // namespace manna::mann

#endif // MANNA_MANN_CONTROLLER_HH
