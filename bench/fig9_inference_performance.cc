/**
 * @file
 * Reproduces Figure 9: inference performance of the 16-tile Manna
 * against the GTX 1080-Ti and RTX 2080-Ti, no batching, across the
 * ten Table-2 benchmarks (ordered by external memory size).
 *
 * Paper headline: 11x-184x speedup over the 1080-Ti (average 39x);
 * average 24x over the 2080-Ti.
 *
 * Knobs: steps=, jobs=, bench=<name> (single-benchmark filter), plus
 * the robustness knobs retries=/timeout=/journal=/resume= (see
 * docs/ROBUSTNESS.md). Failed simulation points render as FAILED
 * cells and make the binary exit nonzero after the full table.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string only = cfg.getString("bench", "");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);
    const arch::MannaConfig manna = arch::MannaConfig::baseline16();

    harness::printBanner("Figure 9",
                         "Inference performance vs GPU baselines");

    std::vector<workloads::Benchmark> suite;
    for (const auto &bench : workloads::table2Suite())
        if (only.empty() || bench.name == only)
            suite.push_back(bench);

    std::vector<harness::SweepJob> sweep;
    for (const auto &bench : suite)
        sweep.push_back({bench, manna, steps, /*seed=*/1});

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    Table table({"Benchmark", "MemBytes", "Manna us/step",
                 "1080Ti us/step", "2080Ti us/step", "Speedup v1080",
                 "Speedup v2080"});
    std::vector<double> speedups1080;
    std::vector<double> speedups2080;

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &benchmark = suite[i];
        const auto p1080 =
            harness::evaluateBaseline(benchmark, harness::gpu1080Ti());
        const auto p2080 =
            harness::evaluateBaseline(benchmark, harness::gpu2080Ti());
        const auto &outcome = report.outcomes[i];
        if (!outcome.ok) {
            // Baselines are analytical and always available; only the
            // simulated cells are unknown.
            table.addRow({benchmark.name,
                          formatBytes(benchmark.config.memoryBytes()),
                          "FAILED",
                          strformat("%.1f", p1080.secondsPerStep * 1e6),
                          strformat("%.1f", p2080.secondsPerStep * 1e6),
                          "-", "-"});
            continue;
        }
        const auto &mannaRes = outcome.value;

        const double s1080 =
            p1080.secondsPerStep / mannaRes.secondsPerStep;
        const double s2080 =
            p2080.secondsPerStep / mannaRes.secondsPerStep;
        speedups1080.push_back(s1080);
        speedups2080.push_back(s2080);

        table.addRow({benchmark.name,
                      formatBytes(benchmark.config.memoryBytes()),
                      strformat("%.1f", mannaRes.secondsPerStep * 1e6),
                      strformat("%.1f", p1080.secondsPerStep * 1e6),
                      strformat("%.1f", p2080.secondsPerStep * 1e6),
                      formatFactor(s1080), formatFactor(s2080)});
    }
    harness::printTable(table);
    std::printf("%s\n",
                harness::summarizeFactors("speedup vs 1080-Ti",
                                          speedups1080)
                    .c_str());
    std::printf("%s\n",
                harness::summarizeFactors("speedup vs 2080-Ti",
                                          speedups2080)
                    .c_str());
    harness::printPaperReference(
        "Figure 9 reports 11x-184x (average 39x) over the 1080-Ti and "
        "an average of 24x over the 2080-Ti.");
    harness::applySweepObservability(
        cfg, "fig9_inference_performance", report);
    return harness::finishSweep(report);
}
