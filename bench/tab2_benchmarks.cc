/**
 * @file
 * Reproduces Table 2: the ten-benchmark suite with its memory shapes,
 * controller dimensions, and head counts — plus each benchmark's
 * simulated cycles/step at the paper's 16-tile configuration.
 *
 * The simulated column runs through the fault-isolated sweep runner,
 * so the usual knobs apply (steps= [default 1], jobs=, bench=
 * single-benchmark filter, retries=/timeout=/journal=/resume=,
 * progress=/stats=/bench_json=, shards=, fidelity=cycle|fast).
 * Benchmarks whose memory has
 * fewer rows than 16 tiles render "-" (the paper's 16-tile point
 * cannot run them); failed simulation points render as FAILED cells
 * and make the binary exit nonzero after the full table.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps =
        static_cast<std::size_t>(cfg.getInt("steps", 1));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string only = cfg.getString("bench", "");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);
    const sim::Fidelity fidelity = harness::fidelityFromConfig(cfg);

    harness::printBanner("Table 2", "Summary of benchmarks");

    std::vector<workloads::Benchmark> suite;
    for (const auto &b : workloads::table2Suite())
        if (only.empty() || b.name == only)
            suite.push_back(b);

    // The measured column: one simulation per benchmark at the
    // paper's evaluated 16-tile point, through the fault-isolated
    // runner (submission order, so the table below is byte-identical
    // for any worker count). Benchmarks smaller than 16 memory rows
    // are skipped.
    const arch::MannaConfig arch16 = arch::MannaConfig::baseline16();
    std::vector<harness::SweepJob> sweep;
    for (const auto &b : suite)
        if (b.config.memN >= 16)
            sweep.push_back({b, arch16, steps, /*seed=*/1, fidelity});

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    Table table({"Benchmark", "Task", "Diff. Memory", "Controller",
                 "Read Heads", "Write Heads", "Mem Footprint",
                 "Cycles/step (16T)"});
    std::size_t next = 0;
    for (const auto &b : suite) {
        std::string cycles = "-";
        if (b.config.memN >= 16) {
            const auto &outcome = report.outcomes[next++];
            cycles = outcome.ok
                         ? strformat("%.0f",
                                     static_cast<double>(
                                         outcome.value.report
                                             .totalCycles) /
                                         static_cast<double>(steps))
                         : "FAILED";
        }
        table.addRow({b.name, toString(b.task),
                      strformat("%zux%zu", b.config.memN,
                                b.config.memM),
                      strformat("%zux%zu", b.config.controllerLayers,
                                b.config.controllerWidth),
                      strformat("%zu", b.config.numReadHeads),
                      strformat("%zu", b.config.numWriteHeads),
                      formatBytes(b.config.memoryBytes()), cycles});
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Table 2 of the paper; shapes reproduced exactly. Input/output "
        "vector widths are not published and are chosen per task (see "
        "workloads/benchmarks.cc).");
    harness::applySweepObservability(cfg, "tab2_benchmarks", report);
    return harness::finishSweep(report);
}
