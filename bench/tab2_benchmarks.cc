/**
 * @file
 * Reproduces Table 2: the ten-benchmark suite with its memory shapes,
 * controller dimensions, and head counts.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));

    harness::printBanner("Table 2", "Summary of benchmarks");

    Table table({"Benchmark", "Task", "Diff. Memory", "Controller",
                 "Read Heads", "Write Heads", "Mem Footprint"});
    const auto suite = workloads::table2Suite();

    // The rows are pure functions of the suite entries, so format
    // them through the runner's ordered map: output is identical for
    // any worker count.
    harness::SweepRunner runner(jobs);
    const auto rows = runner.map(
        suite.size(), [&suite](std::size_t i) {
            const auto &b = suite[i];
            return std::vector<std::string>{
                b.name, toString(b.task),
                strformat("%zux%zu", b.config.memN, b.config.memM),
                strformat("%zux%zu", b.config.controllerLayers,
                          b.config.controllerWidth),
                strformat("%zu", b.config.numReadHeads),
                strformat("%zu", b.config.numWriteHeads),
                formatBytes(b.config.memoryBytes())};
        });
    for (const auto &row : rows)
        table.addRow(std::vector<std::string>(row));
    harness::printTable(table);
    harness::printPaperReference(
        "Table 2 of the paper; shapes reproduced exactly. Input/output "
        "vector widths are not published and are chosen per task (see "
        "workloads/benchmarks.cc).");
    return 0;
}
