/**
 * @file
 * Reproduces Table 2: the ten-benchmark suite with its memory shapes,
 * controller dimensions, and head counts.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/report.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

int
main()
{
    harness::printBanner("Table 2", "Summary of benchmarks");

    Table table({"Benchmark", "Task", "Diff. Memory", "Controller",
                 "Read Heads", "Write Heads", "Mem Footprint"});
    for (const auto &b : workloads::table2Suite()) {
        table.addRow(
            {b.name, toString(b.task),
             strformat("%zux%zu", b.config.memN, b.config.memM),
             strformat("%zux%zu", b.config.controllerLayers,
                       b.config.controllerWidth),
             strformat("%zu", b.config.numReadHeads),
             strformat("%zu", b.config.numWriteHeads),
             formatBytes(b.config.memoryBytes())});
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Table 2 of the paper; shapes reproduced exactly. Input/output "
        "vector widths are not published and are chosen per task (see "
        "workloads/benchmarks.cc).");
    return 0;
}
