/**
 * @file
 * Reproduces Figure 2: per-kernel runtime breakdown of NTM inference
 * on the CPU (Skylake Xeon) and GPU (Turing) baselines across the
 * ten benchmarks.
 *
 * Paper headline: the non-controller kernels are ~80% of runtime; on
 * the CPU the memory-heavy access kernels dominate, while on the GPU
 * the narrow addressing kernels take a disproportionate share due to
 * kernel-call overheads and poor utilization.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace manna;

namespace
{

void
printBreakdown(const char *platformName,
               const baselines::PlatformModel &model)
{
    std::printf("\n--- %s ---\n", platformName);
    Table table({"Benchmark", "controller", "heads", "addressing",
                 "key-sim", "soft-read", "soft-write",
                 "non-controller"});
    for (const auto &bench : workloads::table2Suite()) {
        const auto result = harness::evaluateBaseline(bench, model);
        const double total = result.step.seconds;
        auto frac = [&](mann::KernelGroup g) {
            auto it = result.step.groups.find(g);
            const double sec =
                it == result.step.groups.end() ? 0.0 : it->second.seconds;
            return formatPercent(sec / total);
        };
        const double ctrl =
            result.step.groups.at(mann::KernelGroup::Controller)
                .seconds;
        table.addRow({bench.name,
                      frac(mann::KernelGroup::Controller),
                      frac(mann::KernelGroup::Heads),
                      frac(mann::KernelGroup::Addressing),
                      frac(mann::KernelGroup::KeySimilarity),
                      frac(mann::KernelGroup::SoftRead),
                      frac(mann::KernelGroup::SoftWrite),
                      formatPercent((total - ctrl) / total)});
    }
    harness::printTable(table);
}

} // namespace

int
main()
{
    harness::printBanner("Figure 2",
                         "Runtime breakdown of different NTM kernels");
    printBreakdown("CPU (Skylake Xeon)", harness::cpuXeon());
    printBreakdown("GPU (Turing RTX 2080-Ti)", harness::gpu2080Ti());
    harness::printPaperReference(
        "Figure 2: non-controller kernels are ~80% of runtime. On CPUs "
        "the dominant kernels are key similarity / soft read / soft "
        "write; on GPUs the vector-only addressing kernels are an "
        "unexpectedly large portion (narrow-task overheads).");
    return 0;
}
