/**
 * @file
 * Reproduces Figure 2: per-kernel runtime breakdown of NTM inference
 * on the CPU (Skylake Xeon) and GPU (Turing) baselines across the
 * ten benchmarks.
 *
 * Paper headline: the non-controller kernels are ~80% of runtime; on
 * the CPU the memory-heavy access kernels dominate, while on the GPU
 * the narrow addressing kernels take a disproportionate share due to
 * kernel-call overheads and poor utilization.
 *
 * The table is a thin view over the BaselineResult stat registry
 * ("baseline.<group>.seconds" / "baseline.seconds"); pass
 * --dump-stats to print every underlying counter.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/observe.hh"
#include "harness/report.hh"

using namespace manna;

namespace
{

void
printBreakdown(const char *platformName, const char *platformKey,
               const baselines::PlatformModel &model,
               StatRegistry &dump)
{
    std::printf("\n--- %s ---\n", platformName);
    Table table({"Benchmark", "controller", "heads", "addressing",
                 "key-sim", "soft-read", "soft-write",
                 "non-controller"});
    for (const auto &bench : workloads::table2Suite()) {
        const auto result = harness::evaluateBaseline(bench, model);
        const StatRegistry &reg = result.stats;
        const double total = reg.get("baseline.seconds");
        auto frac = [&](const char *group) {
            const double sec = reg.get(
                std::string("baseline.") + group + ".seconds");
            return formatPercent(total > 0.0 ? sec / total : 0.0);
        };
        const double ctrl = reg.get("baseline.controller.seconds");
        table.addRow({bench.name, frac("controller"), frac("heads"),
                      frac("addressing"), frac("key_similarity"),
                      frac("soft_read"), frac("soft_write"),
                      formatPercent(total > 0.0 ? (total - ctrl) / total
                                                : 0.0)});
        for (const auto &[k, v] : reg.entries())
            dump.set(std::string(platformKey) + "." + bench.name +
                         "." + k,
                     v);
    }
    harness::printTable(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    harness::printBanner("Figure 2",
                         "Runtime breakdown of different NTM kernels");
    StatRegistry dump;
    printBreakdown("CPU (Skylake Xeon)", "cpu", harness::cpuXeon(),
                   dump);
    printBreakdown("GPU (Turing RTX 2080-Ti)", "gpu",
                   harness::gpu2080Ti(), dump);
    harness::printPaperReference(
        "Figure 2: non-controller kernels are ~80% of runtime. On CPUs "
        "the dominant kernels are key similarity / soft read / soft "
        "write; on GPUs the vector-only addressing kernels are an "
        "unexpectedly large portion (narrow-task overheads).");
    harness::dumpStatsIfRequested(cfg, dump);
    return 0;
}
