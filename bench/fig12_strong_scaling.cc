/**
 * @file
 * Reproduces Figure 12: strong scaling — speedup of 8/16/32/64-tile
 * Manna configurations over a 4-tile baseline on fixed problem sizes.
 *
 * Paper headline: large benchmarks scale well but with diminishing
 * returns (the serial per-tile SFUs and the fixed-size addressing
 * work limit scaling); small benchmarks and those with memM close to
 * memN scale worst because only memN is distributed (MDistrib = 1).
 *
 * Knobs: steps=, jobs=, bench=<name> (single-benchmark filter),
 * fidelity=cycle|fast (calibrated-fast simulation, see docs/PERF.md),
 * the robustness knobs retries=/timeout=/journal=/resume= (see
 * docs/ROBUSTNESS.md), and the observability knobs trace=/stats=/
 * progress=/profile=/bench_json=/--dump-stats (see
 * docs/OBSERVABILITY.md). Failed simulation points render as FAILED
 * cells and make the binary exit nonzero after the full table.
 * trace=<path> re-runs the first sweep point with an instruction
 * tracer attached and writes a Perfetto-loadable Chrome trace there;
 * profile=<path> re-runs the first benchmark at the paper's 16-tile
 * point and writes its cycle-accounting profile (stall bottlenecks +
 * roofline) there.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", 4)); // scaled problems are large
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string only = cfg.getString("bench", "");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);
    const harness::TraceOptions traceOpts =
        harness::traceOptionsFromConfig(cfg);
    const sim::Fidelity fidelity = harness::fidelityFromConfig(cfg);

    harness::printBanner("Figure 12",
                         "Manna performance trends with strong "
                         "scaling (speedup vs 4 tiles)");

    const std::size_t tileCounts[] = {4, 8, 16, 32, 64};
    Table table({"Benchmark", "4", "8", "16", "32", "64"});

    // Build the job list first (cells where the memory has fewer rows
    // than tiles are skipped), then execute it on the sweep runner:
    // results come back in submission order, so the table below is
    // byte-identical for any worker count.
    std::vector<workloads::Benchmark> suite;
    for (const auto &bench : workloads::table2Suite())
        if (only.empty() || bench.name == only)
            suite.push_back(bench);

    std::vector<harness::SweepJob> sweep;
    for (const auto &bench : suite) {
        for (std::size_t tiles : tileCounts) {
            if (bench.config.memN < tiles)
                continue;
            sweep.push_back({bench,
                             arch::MannaConfig::withTiles(tiles),
                             steps, /*seed=*/1, fidelity});
        }
    }

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    std::size_t next = 0;
    for (const auto &bench : suite) {
        std::vector<std::string> row{bench.name};
        double baseline = 0.0;
        for (std::size_t tiles : tileCounts) {
            if (bench.config.memN < tiles) {
                row.push_back("-");
                continue;
            }
            const auto &outcome = report.outcomes[next++];
            if (!outcome.ok) {
                row.push_back("FAILED");
                continue;
            }
            const auto &result = outcome.value;
            if (tiles == 4) {
                baseline = result.secondsPerStep;
                row.push_back("1.00x");
            } else if (baseline > 0.0) {
                row.push_back(
                    formatFactor(baseline / result.secondsPerStep));
            } else {
                row.push_back("-"); // 4-tile reference cell failed
            }
        }
        table.addRow(std::move(row));
    }
    harness::printTable(table);

    // The scaling limiter, straight from the per-component counters:
    // the serial SFU share of engine-busy cycles across the sweep
    // (deterministic — identical for any worker count).
    const StatRegistry agg = report.aggregateStats();
    const double emacBusy = agg.sumOver("tile", "emac.busy_cycles");
    const double sfuBusy = agg.sumOver("tile", "sfu.busy_cycles");
    const double dmaBusy = agg.sumOver("tile", "mat_dma.busy_cycles") +
                           agg.sumOver("tile", "vec_dma.busy_cycles");
    const double busyTotal = emacBusy + sfuBusy + dmaBusy;
    if (busyTotal > 0.0)
        std::printf("\nengine-busy cycles across the sweep: eMAC "
                    "%.4g, serial SFU %.4g (%.1f%% of busy cycles), "
                    "DMA %.4g; NoC reduces %.0f, broadcasts %.0f.\n",
                    emacBusy, sfuBusy, 100.0 * sfuBusy / busyTotal,
                    dmaBusy, agg.get("noc.reduce.ops"),
                    agg.get("noc.broadcast.ops"));

    harness::printPaperReference(
        "Figure 12: near-linear scaling for the large benchmarks at "
        "low tile counts, with diminishing returns as serial SFU "
        "accesses and undistributed O(memM) work dominate; smaller "
        "benchmarks saturate earlier.");

    if (traceOpts.enabled() && !sweep.empty())
        harness::writeChromeTrace(traceOpts, sweep[0].benchmark,
                                  sweep[0].config, sweep[0].steps,
                                  sweep[0].seed);
    // profile= re-runs the first benchmark at the paper's evaluated
    // 16-tile configuration (the Fig. 12 reference point).
    const harness::ProfileOptions profileOpts =
        harness::profileOptionsFromConfig(cfg);
    if (profileOpts.enabled() && !suite.empty() &&
        suite[0].config.memN >= 16)
        harness::writeProfile(profileOpts, suite[0],
                              arch::MannaConfig::withTiles(16), steps);
    harness::applySweepObservability(cfg, "fig12_strong_scaling",
                                     report);
    return harness::finishSweep(report);
}
