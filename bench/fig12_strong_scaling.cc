/**
 * @file
 * Reproduces Figure 12: strong scaling — speedup of 8/16/32/64-tile
 * Manna configurations over a 4-tile baseline on fixed problem sizes.
 *
 * Paper headline: large benchmarks scale well but with diminishing
 * returns (the serial per-tile SFUs and the fixed-size addressing
 * work limit scaling); small benchmarks and those with memM close to
 * memN scale worst because only memN is distributed (MDistrib = 1).
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", 4)); // scaled problems are large

    harness::printBanner("Figure 12",
                         "Manna performance trends with strong "
                         "scaling (speedup vs 4 tiles)");

    const std::size_t tileCounts[] = {4, 8, 16, 32, 64};
    Table table({"Benchmark", "4", "8", "16", "32", "64"});

    for (const auto &bench : workloads::table2Suite()) {
        std::vector<std::string> row{bench.name};
        double baseline = 0.0;
        for (std::size_t tiles : tileCounts) {
            if (bench.config.memN < tiles) {
                row.push_back("-");
                continue;
            }
            const auto result = harness::simulateManna(
                bench, arch::MannaConfig::withTiles(tiles), steps);
            if (tiles == 4) {
                baseline = result.secondsPerStep;
                row.push_back("1.00x");
            } else {
                row.push_back(
                    formatFactor(baseline / result.secondsPerStep));
            }
        }
        table.addRow(std::move(row));
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Figure 12: near-linear scaling for the large benchmarks at "
        "low tile counts, with diminishing returns as serial SFU "
        "accesses and undistributed O(memM) work dominate; smaller "
        "benchmarks saturate earlier.");
    return 0;
}
