/**
 * @file
 * Reproduces Figure 10: kernel-specific speedups of Manna over the
 * 2080-Ti across the benchmark suite.
 *
 * Paper headline: addressing kernels see the largest speedups (the
 * GPU is severely underutilized on them); soft read saturates at ~3x
 * for the largest benchmarks once the GPU is fully utilized; the
 * head kernels sit between the two extremes.
 *
 * Knobs: steps=, jobs=, bench=<name> (single-benchmark filter), plus
 * the robustness knobs retries=/timeout=/journal=/resume= (see
 * docs/ROBUSTNESS.md). Failed simulation points render as FAILED
 * cells and make the binary exit nonzero after the full table.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string only = cfg.getString("bench", "");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Figure 10",
                         "Kernel-specific inference performance vs "
                         "RTX 2080-Ti");

    const arch::MannaConfig manna = arch::MannaConfig::baseline16();

    std::vector<workloads::Benchmark> suite;
    for (const auto &bench : workloads::table2Suite())
        if (only.empty() || bench.name == only)
            suite.push_back(bench);

    std::vector<harness::SweepJob> sweep;
    for (const auto &bench : suite)
        sweep.push_back({bench, manna, steps, /*seed=*/1});

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    Table table({"Benchmark", "heads", "addressing", "key-sim",
                 "soft-read", "soft-write"});
    std::map<mann::KernelGroup, std::vector<double>> perGroup;

    const mann::KernelGroup figureGroups[] = {
        mann::KernelGroup::Heads, mann::KernelGroup::Addressing,
        mann::KernelGroup::KeySimilarity, mann::KernelGroup::SoftRead,
        mann::KernelGroup::SoftWrite};

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &bench = suite[i];
        const auto &outcome = report.outcomes[i];
        if (!outcome.ok) {
            std::vector<std::string> row{bench.name};
            for (std::size_t g = 0; g < std::size(figureGroups); ++g)
                row.push_back("FAILED");
            table.addRow(std::move(row));
            continue;
        }
        const auto &mannaRes = outcome.value;
        const auto gpu =
            harness::evaluateBaseline(bench, harness::gpu2080Ti());

        auto speedup = [&](mann::KernelGroup g) {
            const double mannaSec = mannaRes.groupSeconds.count(g)
                                        ? mannaRes.groupSeconds.at(g)
                                        : 0.0;
            const double gpuSec = gpu.step.groups.count(g)
                                      ? gpu.step.groups.at(g).seconds
                                      : 0.0;
            if (mannaSec <= 0.0 || gpuSec <= 0.0)
                return 0.0;
            return gpuSec / mannaSec;
        };

        std::vector<std::string> row{bench.name};
        for (mann::KernelGroup g : figureGroups) {
            const double s = speedup(g);
            perGroup[g].push_back(s);
            row.push_back(formatFactor(s));
        }
        table.addRow(std::move(row));
    }
    harness::printTable(table);

    std::printf("\n");
    for (const auto &[group, speedups] : perGroup)
        std::printf("%s\n",
                    harness::summarizeFactors(toString(group),
                                              speedups)
                        .c_str());
    harness::printPaperReference(
        "Figure 10: addressing kernels show the highest speedups "
        "(full parallelization vs GPU underutilization); soft read "
        "saturates around 3x on the largest benchmarks; heads fall in "
        "between.");
    harness::applySweepObservability(cfg, "fig10_kernel_speedup",
                                     report);
    return harness::finishSweep(report);
}
