/**
 * @file
 * Reproduces Figure 10: kernel-specific speedups of Manna over the
 * 2080-Ti across the benchmark suite.
 *
 * Paper headline: addressing kernels see the largest speedups (the
 * GPU is severely underutilized on them); soft read saturates at ~3x
 * for the largest benchmarks once the GPU is fully utilized; the
 * head kernels sit between the two extremes.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));

    harness::printBanner("Figure 10",
                         "Kernel-specific inference performance vs "
                         "RTX 2080-Ti");

    const arch::MannaConfig manna = arch::MannaConfig::baseline16();
    Table table({"Benchmark", "heads", "addressing", "key-sim",
                 "soft-read", "soft-write"});
    std::map<mann::KernelGroup, std::vector<double>> perGroup;

    for (const auto &bench : workloads::table2Suite()) {
        const auto mannaRes =
            harness::simulateManna(bench, manna, steps);
        const auto gpu =
            harness::evaluateBaseline(bench, harness::gpu2080Ti());

        auto speedup = [&](mann::KernelGroup g) {
            const double mannaSec = mannaRes.groupSeconds.count(g)
                                        ? mannaRes.groupSeconds.at(g)
                                        : 0.0;
            const double gpuSec = gpu.step.groups.count(g)
                                      ? gpu.step.groups.at(g).seconds
                                      : 0.0;
            if (mannaSec <= 0.0 || gpuSec <= 0.0)
                return 0.0;
            return gpuSec / mannaSec;
        };

        std::vector<std::string> row{bench.name};
        for (mann::KernelGroup g :
             {mann::KernelGroup::Heads, mann::KernelGroup::Addressing,
              mann::KernelGroup::KeySimilarity,
              mann::KernelGroup::SoftRead,
              mann::KernelGroup::SoftWrite}) {
            const double s = speedup(g);
            perGroup[g].push_back(s);
            row.push_back(formatFactor(s));
        }
        table.addRow(std::move(row));
    }
    harness::printTable(table);

    std::printf("\n");
    for (const auto &[group, speedups] : perGroup)
        std::printf("%s\n",
                    harness::summarizeFactors(toString(group),
                                              speedups)
                        .c_str());
    harness::printPaperReference(
        "Figure 10: addressing kernels show the highest speedups "
        "(full parallelization vs GPU underutilization); soft read "
        "saturates around 3x on the largest benchmarks; heads fall in "
        "between.");
    return 0;
}
