/**
 * @file
 * Evidence for the Section 4.1 provisioning claim: Manna dedicates
 * most die area to banked memories and gives each tile "just enough
 * processing elements to match that on-chip memory bandwidth",
 * maintaining high utilization of the compute it does have.
 *
 * Reports, per benchmark, the fraction of cycles each tile resource
 * class is busy on the 16-tile baseline, and contrasts a
 * compute-heavy variant (4x the eMACs at the same bandwidth) whose
 * extra lanes mostly idle.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace manna;

namespace
{

struct UtilRow
{
    std::map<std::string, double> util;
    double secondsPerStep;
};

UtilRow
utilizationFor(const workloads::Benchmark &bench,
               const arch::MannaConfig &hw, std::size_t steps)
{
    const auto result = harness::simulateManna(bench, hw, steps);
    return {result.report.resourceUtilization,
            result.secondsPerStep};
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));

    harness::printBanner(
        "Section 4.1",
        "Compute/bandwidth balance: tile resource utilization");

    const arch::MannaConfig baseline = arch::MannaConfig::baseline16();
    arch::MannaConfig computeHeavy = baseline;
    computeHeavy.emacsPerTile = 128; // 4x lanes, same buffer width

    Table table({"Benchmark", "eMAC util", "matrix-DMA util",
                 "SFU util", "Speedup @4x lanes"});
    std::vector<double> emacUtils, extraLaneGains;
    for (const auto &bench : workloads::table2Suite()) {
        const auto base = utilizationFor(bench, baseline, steps);
        const auto heavy = utilizationFor(bench, computeHeavy, steps);
        emacUtils.push_back(base.util.at("emac"));
        const double gain = base.secondsPerStep / heavy.secondsPerStep;
        extraLaneGains.push_back(gain);
        table.addRow({bench.name,
                      formatPercent(base.util.at("emac")),
                      formatPercent(base.util.at("mat_dma")),
                      formatPercent(base.util.at("sfu")),
                      formatFactor(gain)});
    }
    harness::printTable(table);
    std::printf("\nmean eMAC utilization at the baseline balance: %s. "
                "Quadrupling the compute lanes (with the same memory "
                "bandwidth) buys only %.2fx on average -- far from the "
                "4x more silicon spent -- confirming the provisioning "
                "argument.\n",
                formatPercent(mean(emacUtils)).c_str(),
                mean(extraLaneGains));
    harness::printPaperReference(
        "Section 4.1: \"the DiffMem tiles are then provisioned with "
        "just enough processing elements to match that on-chip memory "
        "bandwidth\", maintaining high utilization instead of high "
        "theoretical throughput.");
    return 0;
}
