/**
 * @file
 * Evidence for the Section 4.1 provisioning claim: Manna dedicates
 * most die area to banked memories and gives each tile "just enough
 * processing elements to match that on-chip memory bandwidth",
 * maintaining high utilization of the compute it does have.
 *
 * Reports, per benchmark, the fraction of cycles each tile resource
 * class is busy on the 16-tile baseline (read from the simulator's
 * per-tile counter registry, keys `chip.util.<engine>`), and
 * contrasts a compute-heavy variant (4x the eMACs at the same
 * bandwidth) whose extra lanes mostly idle.
 *
 * Knobs: steps=, plus trace=<path>/trace_limit= to dump a
 * Perfetto-loadable Chrome trace, profile=<path>/profile_top= to
 * write the cycle-accounting profile, and --dump-stats to print the
 * accumulated counters — all for the first benchmark on the baseline
 * configuration (see docs/OBSERVABILITY.md).
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/observe.hh"
#include "harness/report.hh"

using namespace manna;

namespace
{

struct UtilRow
{
    double emac;
    double matDma;
    double sfu;
    double secondsPerStep;
};

UtilRow
utilizationFor(const workloads::Benchmark &bench,
               const arch::MannaConfig &hw, std::size_t steps)
{
    const auto result = harness::simulateManna(bench, hw, steps);
    const StatRegistry &stats = result.report.stats;
    return {stats.get("chip.util.emac"),
            stats.get("chip.util.mat_dma"), stats.get("chip.util.sfu"),
            result.secondsPerStep};
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));
    const harness::TraceOptions traceOpts =
        harness::traceOptionsFromConfig(cfg);

    harness::printBanner(
        "Section 4.1",
        "Compute/bandwidth balance: tile resource utilization");

    const arch::MannaConfig baseline = arch::MannaConfig::baseline16();
    arch::MannaConfig computeHeavy = baseline;
    computeHeavy.emacsPerTile = 128; // 4x lanes, same buffer width

    Table table({"Benchmark", "eMAC util", "matrix-DMA util",
                 "SFU util", "Speedup @4x lanes"});
    std::vector<double> emacUtils, extraLaneGains;
    StatRegistry dump;
    for (const auto &bench : workloads::table2Suite()) {
        const auto base = utilizationFor(bench, baseline, steps);
        const auto heavy = utilizationFor(bench, computeHeavy, steps);
        dump.set("sec41." + bench.name + ".util.emac", base.emac);
        dump.set("sec41." + bench.name + ".util.mat_dma", base.matDma);
        dump.set("sec41." + bench.name + ".util.sfu", base.sfu);
        emacUtils.push_back(base.emac);
        const double gain = base.secondsPerStep / heavy.secondsPerStep;
        extraLaneGains.push_back(gain);
        table.addRow({bench.name, formatPercent(base.emac),
                      formatPercent(base.matDma),
                      formatPercent(base.sfu), formatFactor(gain)});
    }
    harness::printTable(table);
    std::printf("\nmean eMAC utilization at the baseline balance: %s. "
                "Quadrupling the compute lanes (with the same memory "
                "bandwidth) buys only %.2fx on average -- far from the "
                "4x more silicon spent -- confirming the provisioning "
                "argument.\n",
                formatPercent(mean(emacUtils)).c_str(),
                mean(extraLaneGains));
    harness::printPaperReference(
        "Section 4.1: \"the DiffMem tiles are then provisioned with "
        "just enough processing elements to match that on-chip memory "
        "bandwidth\", maintaining high utilization instead of high "
        "theoretical throughput.");

    const auto &suite = workloads::table2Suite();
    if (traceOpts.enabled() && !suite.empty())
        harness::writeChromeTrace(traceOpts, suite.front(), baseline,
                                  steps);
    const harness::ProfileOptions profileOpts =
        harness::profileOptionsFromConfig(cfg);
    if (profileOpts.enabled() && !suite.empty())
        harness::writeProfile(profileOpts, suite.front(), baseline,
                              steps);
    harness::dumpStatsIfRequested(cfg, dump);
    return 0;
}
