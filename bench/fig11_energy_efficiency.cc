/**
 * @file
 * Reproduces Figure 11: energy efficiency (NTM time steps per joule)
 * of Manna relative to the GPU baselines.
 *
 * Paper headline: 58x-301x (average 122x) improvement over the
 * 1080-Ti and an average of 86x over the 2080-Ti, driven by both the
 * speedup and Manna's order-of-magnitude lower power.
 *
 * Knobs: steps=, jobs=, bench=<name> (single-benchmark filter), plus
 * the robustness knobs retries=/timeout=/journal=/resume= (see
 * docs/ROBUSTNESS.md). Failed simulation points render as FAILED
 * cells and make the binary exit nonzero after the full table.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string only = cfg.getString("bench", "");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Figure 11",
                         "Energy efficiency compared to GPU baselines "
                         "(steps/J)");

    const arch::MannaConfig manna = arch::MannaConfig::baseline16();

    std::vector<workloads::Benchmark> suite;
    for (const auto &bench : workloads::table2Suite())
        if (only.empty() || bench.name == only)
            suite.push_back(bench);

    std::vector<harness::SweepJob> sweep;
    for (const auto &bench : suite)
        sweep.push_back({bench, manna, steps, /*seed=*/1});

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    Table table({"Benchmark", "Manna steps/J", "Manna W",
                 "1080Ti steps/J", "2080Ti steps/J", "Improv v1080",
                 "Improv v2080"});
    std::vector<double> f1080, f2080;

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &bench = suite[i];
        const auto p1080 =
            harness::evaluateBaseline(bench, harness::gpu1080Ti());
        const auto p2080 =
            harness::evaluateBaseline(bench, harness::gpu2080Ti());
        const double g1080Spj = 1.0 / p1080.joulesPerStep;
        const double g2080Spj = 1.0 / p2080.joulesPerStep;
        const auto &outcome = report.outcomes[i];
        if (!outcome.ok) {
            table.addRow({bench.name, "FAILED", "-",
                          strformat("%.3g", g1080Spj),
                          strformat("%.3g", g2080Spj), "-", "-"});
            continue;
        }
        const auto &mannaRes = outcome.value;

        const double mannaSpj = 1.0 / mannaRes.joulesPerStep;
        const double i1080 = mannaSpj / g1080Spj;
        const double i2080 = mannaSpj / g2080Spj;
        f1080.push_back(i1080);
        f2080.push_back(i2080);

        table.addRow(
            {bench.name, strformat("%.3g", mannaSpj),
             strformat("%.1f",
                       mannaRes.joulesPerStep / mannaRes.secondsPerStep),
             strformat("%.3g", g1080Spj), strformat("%.3g", g2080Spj),
             formatFactor(i1080), formatFactor(i2080)});
    }
    harness::printTable(table);
    std::printf(
        "%s\n",
        harness::summarizeFactors("energy improvement vs 1080-Ti",
                                  f1080)
            .c_str());
    std::printf(
        "%s\n",
        harness::summarizeFactors("energy improvement vs 2080-Ti",
                                  f2080)
            .c_str());
    harness::printPaperReference(
        "Figure 11: 58x-301x (average 122x) over the 1080-Ti; average "
        "86x over the 2080-Ti.");
    harness::applySweepObservability(cfg, "fig11_energy_efficiency",
                                     report);
    return harness::finishSweep(report);
}
