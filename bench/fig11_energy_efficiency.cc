/**
 * @file
 * Reproduces Figure 11: energy efficiency (NTM time steps per joule)
 * of Manna relative to the GPU baselines.
 *
 * Paper headline: 58x-301x (average 122x) improvement over the
 * 1080-Ti and an average of 86x over the 2080-Ti, driven by both the
 * speedup and Manna's order-of-magnitude lower power.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));

    harness::printBanner("Figure 11",
                         "Energy efficiency compared to GPU baselines "
                         "(steps/J)");

    const arch::MannaConfig manna = arch::MannaConfig::baseline16();
    Table table({"Benchmark", "Manna steps/J", "Manna W",
                 "1080Ti steps/J", "2080Ti steps/J", "Improv v1080",
                 "Improv v2080"});
    std::vector<double> f1080, f2080;

    for (const auto &bench : workloads::table2Suite()) {
        const auto mannaRes =
            harness::simulateManna(bench, manna, steps);
        const auto p1080 =
            harness::evaluateBaseline(bench, harness::gpu1080Ti());
        const auto p2080 =
            harness::evaluateBaseline(bench, harness::gpu2080Ti());

        const double mannaSpj = 1.0 / mannaRes.joulesPerStep;
        const double g1080Spj = 1.0 / p1080.joulesPerStep;
        const double g2080Spj = 1.0 / p2080.joulesPerStep;
        const double i1080 = mannaSpj / g1080Spj;
        const double i2080 = mannaSpj / g2080Spj;
        f1080.push_back(i1080);
        f2080.push_back(i2080);

        table.addRow(
            {bench.name, strformat("%.3g", mannaSpj),
             strformat("%.1f",
                       mannaRes.joulesPerStep / mannaRes.secondsPerStep),
             strformat("%.3g", g1080Spj), strformat("%.3g", g2080Spj),
             formatFactor(i1080), formatFactor(i2080)});
    }
    harness::printTable(table);
    std::printf(
        "%s\n",
        harness::summarizeFactors("energy improvement vs 1080-Ti",
                                  f1080)
            .c_str());
    std::printf(
        "%s\n",
        harness::summarizeFactors("energy improvement vs 2080-Ti",
                                  f2080)
            .c_str());
    harness::printPaperReference(
        "Figure 11: 58x-301x (average 122x) over the 1080-Ti; average "
        "86x over the 2080-Ti.");
    return 0;
}
