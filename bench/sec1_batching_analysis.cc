/**
 * @file
 * Reproduces the paper's Section 1/3 batching argument: batching
 * rescues GPU efficiency for weight-dominated networks (MLPs/RNNs,
 * whose weights are shared across a batch) but *not* for MANNs,
 * because the differentiable external memory is per-sequence dynamic
 * state that cannot be shared.
 *
 * We evaluate GPU throughput (sequences/s) versus batch size for the
 * selected NTM benchmark (bench=, default copy), and contrast with a
 * controller-only network of the same controller shape (the RNN/MLP a
 * conventional accelerator would batch). Manna's unbatched throughput
 * is shown for reference, measured on the simulator through the sweep
 * harness — so the usual knobs (jobs=, retries=/timeout=/journal=/
 * resume=, progress=/stats=/bench_json=, shards=) all apply; a failed
 * simulation renders as FAILED and makes the binary exit nonzero.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

namespace
{

/** Per-sample step time restricted to one kernel group family. */
double
secondsPerSample(const baselines::PlatformStepCost &cost,
                 std::size_t batch)
{
    return cost.seconds / static_cast<double>(batch);
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner(
        "Section 1/3",
        "Why batching cannot rescue GPUs on MANNs (2080-Ti model)");

    const auto &bench = workloads::benchmarkByName(
        cfg.getString("bench", "copy"));
    const mann::OpCounter mannCounter(bench.config);

    // Controller-only proxy: same network with a minimal external
    // memory, so the dense (weight-shared) kernels dominate.
    mann::MannConfig ctrlOnly = bench.config;
    ctrlOnly.memN = 16;
    ctrlOnly.memM = 8;
    const mann::OpCounter ctrlCounter(ctrlOnly);

    const auto &gpu = harness::gpu2080Ti();
    const std::size_t batches[] = {1, 4, 16, 64, 256};

    Table table({"Batch", "MANN seq/s", "MANN scaling",
                 "weight-dominated seq/s", "weight-dom. scaling"});
    double mannBase = 0.0, ctrlBase = 0.0;
    for (std::size_t b : batches) {
        const auto mannCost = gpu.stepCostBatched(mannCounter, b);
        const auto ctrlCost = gpu.stepCostBatched(ctrlCounter, b);
        const double mannRate =
            1.0 / secondsPerSample(mannCost, b);
        const double ctrlRate =
            1.0 / secondsPerSample(ctrlCost, b);
        if (b == 1) {
            mannBase = mannRate;
            ctrlBase = ctrlRate;
        }
        table.addRow({strformat("%zu", b),
                      strformat("%.0f", mannRate),
                      formatFactor(mannRate / mannBase),
                      strformat("%.0f", ctrlRate),
                      formatFactor(ctrlRate / ctrlBase)});
    }
    harness::printTable(table);

    // Manna's unbatched reference point, on the simulator through the
    // fault-isolated sweep harness (one job, but with the full
    // retry/journal/shard machinery).
    const std::vector<harness::SweepJob> sweep{
        {bench, arch::MannaConfig::baseline16(), steps, /*seed=*/1}};
    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);
    if (report.outcomes[0].ok)
        std::printf("\nManna (no batching): %.0f sequences/s per "
                    "chip\n",
                    1.0 / report.outcomes[0].value.secondsPerStep);
    else
        std::printf("\nManna (no batching): FAILED\n");

    const auto m64 = gpu.stepCostBatched(mannCounter, 64);
    const auto c64 = gpu.stepCostBatched(ctrlCounter, 64);
    std::printf("\nat batch 64 the weight-dominated network gained "
                "%.1fx from batching; the MANN gained only %.1fx — "
                "its external memory traffic scales with the batch.\n",
                (1.0 / secondsPerSample(c64, 64)) / ctrlBase,
                (1.0 / secondsPerSample(m64, 64)) / mannBase);
    harness::printPaperReference(
        "Section 1: \"the external memory ... is unique to each "
        "input. Therefore, it cannot be shared across a batch, unlike "
        "the weights of an MLP or RNN\" — so accelerators that rely "
        "on batching to raise FLOPs/Byte are ineffective for MANNs.");
    harness::applySweepObservability(cfg, "sec1_batching_analysis",
                                     report);
    return harness::finishSweep(report);
}
