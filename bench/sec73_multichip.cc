/**
 * @file
 * Reproduces the Section 7.3 multi-chip scaling discussion:
 * distributing the differentiable memory across a cluster of Manna
 * chips "increases the parallelism and compute available
 * proportionally with the capacity of the differentiable memory".
 *
 * For each large benchmark, compares 1/2/4/8-chip clusters: time per
 * step (per-chip simulation of the memory share plus inter-chip
 * overhead for every compiled reduce/broadcast) and energy per step
 * across all chips.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/cluster.hh"
#include "harness/report.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps =
        static_cast<std::size_t>(cfg.getInt("steps", 4));

    harness::printBanner("Section 7.3 (cluster)",
                         "Scaling the differentiable memory across "
                         "multiple Manna chips");

    const arch::MannaConfig chip = arch::MannaConfig::baseline16();
    Table table({"Benchmark", "Chips", "us/step", "comm us",
                 "Speedup", "mJ/step (all chips)"});

    for (const char *name : {"bAbI", "travers", "shrdlu"}) {
        const auto &bench = workloads::benchmarkByName(name);
        double base = 0.0;
        for (std::size_t chips : {1u, 2u, 4u, 8u}) {
            harness::ClusterConfig cluster;
            cluster.chips = chips;
            const auto result = harness::evaluateCluster(
                bench, chip, cluster, steps);
            if (chips == 1)
                base = result.secondsPerStep;
            table.addRow(
                {name, strformat("%zu", chips),
                 strformat("%.1f", result.secondsPerStep * 1e6),
                 strformat("%.1f", result.commSecondsPerStep * 1e6),
                 formatFactor(base / result.secondsPerStep),
                 strformat("%.3f", result.joulesPerStep * 1e3)});
        }
        table.addSeparator();
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Section 7.3: clustering scales compute with memory capacity; "
        "the MANN kernels' trivial inter-tile (here inter-chip) "
        "communication keeps the overhead small relative to per-chip "
        "work.");
    return 0;
}
