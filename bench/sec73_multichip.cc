/**
 * @file
 * Reproduces the Section 7.3 multi-chip scaling discussion:
 * distributing the differentiable memory across a cluster of Manna
 * chips "increases the parallelism and compute available
 * proportionally with the capacity of the differentiable memory".
 *
 * For each large benchmark, compares 1/2/4/8-chip clusters: time per
 * step (per-chip simulation of the memory share plus inter-chip
 * overhead for every compiled reduce/broadcast) and energy per step
 * across all chips.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/cluster.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps =
        static_cast<std::size_t>(cfg.getInt("steps", 4));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));

    harness::printBanner("Section 7.3 (cluster)",
                         "Scaling the differentiable memory across "
                         "multiple Manna chips");

    const arch::MannaConfig chip = arch::MannaConfig::baseline16();
    Table table({"Benchmark", "Chips", "us/step", "comm us",
                 "Speedup", "mJ/step (all chips)"});

    const std::vector<const char *> names{"bAbI", "travers", "shrdlu"};
    const std::vector<std::size_t> chipCounts{1, 2, 4, 8};

    // Cluster evaluations are independent points too: map the whole
    // (benchmark x chips) grid through the runner and assemble the
    // table afterwards in grid order.
    harness::SweepRunner runner(jobs);
    const auto results = runner.map(
        names.size() * chipCounts.size(), [&](std::size_t i) {
            const auto &bench =
                workloads::benchmarkByName(names[i / chipCounts.size()]);
            harness::ClusterConfig cluster;
            cluster.chips = chipCounts[i % chipCounts.size()];
            return harness::evaluateCluster(bench, chip, cluster,
                                            steps);
        });

    std::size_t next = 0;
    for (const char *name : names) {
        double base = 0.0;
        for (std::size_t chips : chipCounts) {
            const auto &result = results[next++];
            if (chips == 1)
                base = result.secondsPerStep;
            table.addRow(
                {name, strformat("%zu", chips),
                 strformat("%.1f", result.secondsPerStep * 1e6),
                 strformat("%.1f", result.commSecondsPerStep * 1e6),
                 formatFactor(base / result.secondsPerStep),
                 strformat("%.3f", result.joulesPerStep * 1e3)});
        }
        table.addSeparator();
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Section 7.3: clustering scales compute with memory capacity; "
        "the MANN kernels' trivial inter-tile (here inter-chip) "
        "communication keeps the overhead small relative to per-chip "
        "work.");
    return 0;
}
