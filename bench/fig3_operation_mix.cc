/**
 * @file
 * Reproduces Figure 3: relative mix of operation types in the
 * runtime-intensive (non-controller) NTM kernels.
 *
 * Paper headline: MAC and element-wise operations each make up
 * ~49.8% of the mix — so a MANN accelerator cannot optimize for MACs
 * alone.
 *
 * The mix is a thin view over the simulator's per-tile operation
 * counters (emac.mac_ops / emac.elwise_ops / sfu.ops summed across
 * tiles): the DiffMem tiles execute exactly the non-controller
 * kernels, so the counted mix is the executed mix. The analytic
 * OpCounter mix is printed alongside as a model cross-check.
 *
 * Knobs: steps=, jobs=, the robustness knobs (retries=/timeout=/
 * journal=/resume=), and the observability knobs bench_json= /
 * --dump-stats (see docs/OBSERVABILITY.md).
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "mann/op_counter.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner(
        "Figure 3",
        "Relative mix of operations in runtime-intensive NTM kernels");

    const auto suite = workloads::table2Suite();
    std::vector<harness::SweepJob> sweep;
    for (const auto &bench : suite)
        sweep.push_back({bench, arch::MannaConfig::baseline16(), steps,
                         /*seed=*/1});

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    Table table({"Benchmark", "MAC ops", "Element-wise ops",
                 "Special (exp/pow/div)", "analytic MAC/elwise/special"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const mann::OpCounter counter(suite[i].config);
        const auto mix = counter.operationMix();
        const std::string analytic = strformat(
            "%.1f%% / %.1f%% / %.1f%%", mix.macFraction * 100.0,
            mix.elwiseFraction * 100.0, mix.specialFraction * 100.0);
        const auto &outcome = report.outcomes[i];
        if (!outcome.ok) {
            table.addRow({suite[i].name, "FAILED", "FAILED", "FAILED",
                          analytic});
            continue;
        }
        const StatRegistry &reg = outcome.value.report.stats;
        const double mac = reg.sumOver("tile", "emac.mac_ops");
        const double elwise = reg.sumOver("tile", "emac.elwise_ops");
        const double special = reg.sumOver("tile", "sfu.ops");
        const double total = mac + elwise + special;
        auto frac = [&](double ops) {
            return formatPercent(total > 0.0 ? ops / total : 0.0);
        };
        table.addRow({suite[i].name, frac(mac), frac(elwise),
                      frac(special), analytic});
    }
    harness::printTable(table);

    const StatRegistry agg = report.aggregateStats();
    const double mac = agg.sumOver("tile", "emac.mac_ops");
    const double elwise = agg.sumOver("tile", "emac.elwise_ops");
    const double special = agg.sumOver("tile", "sfu.ops");
    const double total = mac + elwise + special;
    if (total > 0.0)
        std::printf("\nacross the suite: MAC %.1f%% / element-wise "
                    "%.1f%% / special %.1f%% of executed non-controller "
                    "operations\n",
                    mac / total * 100.0, elwise / total * 100.0,
                    special / total * 100.0);
    harness::printPaperReference(
        "Figure 3: the non-controller kernels are almost equally "
        "dominated (49.8% each in the paper's copy analysis) by fused "
        "MACs and element-wise operations, with a small special-"
        "function tail.");

    harness::applySweepObservability(cfg, "fig3_operation_mix", report);
    return harness::finishSweep(report);
}
