/**
 * @file
 * Reproduces Figure 3: relative mix of operation types in the
 * runtime-intensive (non-controller) NTM kernels, analytically
 * modeled on the copy benchmark.
 *
 * Paper headline: MAC and element-wise operations each make up
 * ~49.8% of the mix — so a MANN accelerator cannot optimize for MACs
 * alone.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/report.hh"
#include "mann/op_counter.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

int
main()
{
    harness::printBanner(
        "Figure 3",
        "Relative mix of operations in runtime-intensive NTM kernels");

    Table table({"Benchmark", "MAC ops", "Element-wise ops",
                 "Special (exp/pow/div)"});
    for (const auto &bench : workloads::table2Suite()) {
        const mann::OpCounter counter(bench.config);
        const auto mix = counter.operationMix();
        table.addRow({bench.name, formatPercent(mix.macFraction),
                      formatPercent(mix.elwiseFraction),
                      formatPercent(mix.specialFraction)});
    }
    harness::printTable(table);

    const mann::OpCounter copy(
        workloads::benchmarkByName("copy").config);
    const auto mix = copy.operationMix();
    std::printf("\ncopy benchmark: MAC %.1f%% / element-wise %.1f%% / "
                "special %.1f%%\n",
                mix.macFraction * 100.0, mix.elwiseFraction * 100.0,
                mix.specialFraction * 100.0);
    harness::printPaperReference(
        "Figure 3: on the copy benchmark the non-controller kernels "
        "are equally dominated (49.8% each) by fused MACs and "
        "element-wise operations.");
    return 0;
}
