/**
 * @file
 * Reproduces Figure 13: weak scaling — tiles and problem size grow
 * together (both memory dimensions scale with sqrt(tiles/4)), so
 * ideal scaling is a flat line at 1.0.
 *
 * Paper headline: Manna exhibits near-ideal weak scaling because the
 * MANN kernels are embarrassingly parallel across tiles and inter-
 * tile communication is trivial next to per-tile work.
 *
 * Knobs: steps=, jobs=, bench=<name>, fidelity=cycle|fast, plus the
 * usual sweep robustness/observability knobs (see harness/sweep.hh).
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", 4)); // scaled problems are large
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string only = cfg.getString("bench", "");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);
    const sim::Fidelity fidelity = harness::fidelityFromConfig(cfg);

    harness::printBanner(
        "Figure 13",
        "Manna performance trends with weak scaling "
        "(time per step, normalized to 4 tiles; 1.0 = ideal)");

    const std::size_t tileCounts[] = {4, 8, 16, 32, 64};
    Table table({"Benchmark", "4", "8", "16", "32", "64"});

    std::vector<workloads::Benchmark> suite;
    for (const auto &bench : workloads::table2Suite())
        if (only.empty() || bench.name == only)
            suite.push_back(bench);

    std::vector<harness::SweepJob> sweep;
    for (const auto &bench : suite)
        for (std::size_t tiles : tileCounts)
            sweep.push_back({workloads::weakScaled(bench, tiles, 4),
                             arch::MannaConfig::withTiles(tiles),
                             steps, /*seed=*/1, fidelity});

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    std::size_t next = 0;
    for (const auto &bench : suite) {
        std::vector<std::string> row{bench.name};
        double baseline = 0.0;
        for (std::size_t tiles : tileCounts) {
            const auto &outcome = report.outcomes[next++];
            if (!outcome.ok) {
                row.push_back("FAILED");
                continue;
            }
            const auto &result = outcome.value;
            if (tiles == 4) {
                baseline = result.secondsPerStep;
                row.push_back("1.00");
            } else if (baseline > 0.0) {
                row.push_back(strformat(
                    "%.2f", result.secondsPerStep / baseline));
            } else {
                row.push_back("-"); // 4-tile reference cell failed
            }
        }
        table.addRow(std::move(row));
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Figure 13: near-ideal weak scaling with very little "
        "variability as tiles and problem size grow together.");
    harness::applySweepObservability(cfg, "fig13_weak_scaling",
                                     report);
    return harness::finishSweep(report);
}
