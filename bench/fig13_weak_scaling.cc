/**
 * @file
 * Reproduces Figure 13: weak scaling — tiles and problem size grow
 * together (both memory dimensions scale with sqrt(tiles/4)), so
 * ideal scaling is a flat line at 1.0.
 *
 * Paper headline: Manna exhibits near-ideal weak scaling because the
 * MANN kernels are embarrassingly parallel across tiles and inter-
 * tile communication is trivial next to per-tile work.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", 4)); // scaled problems are large

    harness::printBanner(
        "Figure 13",
        "Manna performance trends with weak scaling "
        "(time per step, normalized to 4 tiles; 1.0 = ideal)");

    const std::size_t tileCounts[] = {4, 8, 16, 32, 64};
    Table table({"Benchmark", "4", "8", "16", "32", "64"});

    for (const auto &bench : workloads::table2Suite()) {
        std::vector<std::string> row{bench.name};
        double baseline = 0.0;
        for (std::size_t tiles : tileCounts) {
            const workloads::Benchmark scaled =
                workloads::weakScaled(bench, tiles, 4);
            const auto result = harness::simulateManna(
                scaled, arch::MannaConfig::withTiles(tiles), steps);
            if (tiles == 4) {
                baseline = result.secondsPerStep;
                row.push_back("1.00");
            } else {
                row.push_back(strformat(
                    "%.2f", result.secondsPerStep / baseline));
            }
        }
        table.addRow(std::move(row));
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Figure 13: near-ideal weak scaling with very little "
        "variability as tiles and problem size grow together.");
    return 0;
}
