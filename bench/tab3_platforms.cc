/**
 * @file
 * Reproduces Table 3: platform summary — the two GPU baselines from
 * their public specifications, and Manna from the analytic area/power
 * models (calibrated per DESIGN.md) — plus each platform's sustained
 * unbatched throughput on the selected benchmark (bench=, default
 * copy): the GPUs from their analytic step-cost models, Manna from
 * the cycle-accurate simulator.
 *
 * The simulated Manna point runs through the sweep harness, so the
 * usual knobs apply (steps=, jobs=, retries=/timeout=/journal=/
 * resume=, progress=/stats=/bench_json=, shards=); a failed
 * simulation renders as a FAILED cell and makes the binary exit
 * nonzero.
 */

#include <cstdio>

#include "arch/area_model.hh"
#include "arch/energy_model.hh"
#include "baselines/platform_model.hh"
#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "mann/op_counter.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps =
        static_cast<std::size_t>(cfg.getInt("steps", 4));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Table 3", "Summary of platforms");

    const auto &bench = workloads::benchmarkByName(
        cfg.getString("bench", "copy"));
    const mann::OpCounter counter(bench.config);
    const double stepFlops =
        static_cast<double>(counter.totalWork().flops());

    const std::string seqCol =
        strformat("Unbatched seq/s (%s)", bench.name.c_str());
    Table table({"Platform", "Area (mm^2)", "Node (nm)", "Freq (MHz)",
                 "TDP (W)", "On-Chip (MiB)", "Bandwidth (GB/s)",
                 seqCol, "Sustained GFLOP/s"});
    for (const auto &spec :
         {baselines::pascal1080Ti(), baselines::turing2080Ti()}) {
        const baselines::PlatformModel model(
            spec, /*perKernelLaunch=*/true); // GPUs launch per kernel
        const auto cost = model.stepCost(counter);
        table.addRow({spec.name, strformat("%.0f", spec.areaMm2),
                      strformat("%.0f", spec.technologyNm),
                      strformat("%.0f", spec.frequencyMhz),
                      strformat("%.0f", spec.tdpWatts),
                      strformat("%.1f", spec.onChipMiB),
                      strformat("%.0f", spec.memBandwidthGBs),
                      strformat("%.0f", 1.0 / cost.seconds),
                      strformat("%.1f",
                                stepFlops / cost.seconds / 1e9)});
    }

    // Manna's throughput comes from the cycle-accurate simulator, via
    // the fault-isolated sweep runner (one job at the paper's 16-tile
    // configuration).
    const std::vector<harness::SweepJob> sweep{
        {bench, arch::MannaConfig::baseline16(), steps, /*seed=*/1}};
    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);
    std::string mannaSeq = "FAILED", mannaFlops = "FAILED";
    if (report.outcomes[0].ok) {
        const double sps = report.outcomes[0].value.secondsPerStep;
        mannaSeq = strformat("%.0f", 1.0 / sps);
        mannaFlops = strformat("%.1f", stepFlops / sps / 1e9);
    }

    const arch::MannaConfig manna = arch::MannaConfig::baseline16();
    const arch::AreaBreakdown area = arch::areaOf(manna);
    const double mib =
        static_cast<double>(manna.totalOnChipBytes()) / (1024.0 * 1024);
    table.addRow({"Manna", strformat("%.0f", area.total()), "15",
                  strformat("%.0f", manna.clockMhz),
                  strformat("%.0f", arch::tdpWatts(manna)),
                  strformat("%.1f", mib),
                  strformat("%.0f (on-chip)",
                            manna.aggregateMatrixBandwidthGBs()),
                  mannaSeq, mannaFlops});
    harness::printTable(table);

    std::printf("\nManna area breakdown:\n%s",
                arch::renderArea(area).c_str());
    std::printf("\n%s", manna.describe().c_str());
    harness::printPaperReference(
        "Table 3 reports Manna at 40 mm^2, 15 nm, 500 MHz, 16 W TDP, "
        "38 MiB on-chip; 1080-Ti and 2080-Ti rows match their public "
        "specs.");
    harness::applySweepObservability(cfg, "tab3_platforms", report);
    return harness::finishSweep(report);
}
