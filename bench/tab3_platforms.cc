/**
 * @file
 * Reproduces Table 3: platform summary — the two GPU baselines from
 * their public specifications, and Manna from the analytic area/power
 * models (calibrated per DESIGN.md).
 */

#include <cstdio>

#include "arch/area_model.hh"
#include "arch/energy_model.hh"
#include "baselines/platform_model.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/report.hh"

using namespace manna;

int
main()
{
    harness::printBanner("Table 3", "Summary of platforms");

    Table table({"Platform", "Area (mm^2)", "Node (nm)", "Freq (MHz)",
                 "TDP (W)", "On-Chip (MiB)", "Bandwidth (GB/s)"});
    for (const auto &spec :
         {baselines::pascal1080Ti(), baselines::turing2080Ti()}) {
        table.addRow({spec.name, strformat("%.0f", spec.areaMm2),
                      strformat("%.0f", spec.technologyNm),
                      strformat("%.0f", spec.frequencyMhz),
                      strformat("%.0f", spec.tdpWatts),
                      strformat("%.1f", spec.onChipMiB),
                      strformat("%.0f", spec.memBandwidthGBs)});
    }

    const arch::MannaConfig manna = arch::MannaConfig::baseline16();
    const arch::AreaBreakdown area = arch::areaOf(manna);
    const double mib =
        static_cast<double>(manna.totalOnChipBytes()) / (1024.0 * 1024);
    table.addRow({"Manna", strformat("%.0f", area.total()), "15",
                  strformat("%.0f", manna.clockMhz),
                  strformat("%.0f", arch::tdpWatts(manna)),
                  strformat("%.1f", mib),
                  strformat("%.0f (on-chip)",
                            manna.aggregateMatrixBandwidthGBs())});
    harness::printTable(table);

    std::printf("\nManna area breakdown:\n%s",
                arch::renderArea(area).c_str());
    std::printf("\n%s", manna.describe().c_str());
    harness::printPaperReference(
        "Table 3 reports Manna at 40 mm^2, 15 nm, 500 MHz, 16 W TDP, "
        "38 MiB on-chip; 1080-Ti and 2080-Ti rows match their public "
        "specs.");
    return 0;
}
