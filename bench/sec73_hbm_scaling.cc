/**
 * @file
 * Reproduces the Section 7.3 "Scaling the Differentiable Memory"
 * analysis: adding four HBM2 modules to a 16-tile Manna to hold
 * memories larger than on-chip SRAM.
 *
 * Paper headline: the HBM2 modules supply enough bandwidth to feed
 * all tiles (4 x 256 GB/s vs 16 tiles x 128 B/cycle at 500 MHz), but
 * the chip grows from 40 mm^2 to ~180 mm^2 and the TDP from 16 W to
 * ~116 W, cutting the average energy-efficiency advantage over the
 * 1080-Ti from ~122x to ~17x.
 *
 * Knobs: steps=, jobs=, bench=<name> (benchmark used for the energy
 * illustration, default "copy"), plus the robustness knobs
 * retries=/timeout=/journal=/resume= (see docs/ROBUSTNESS.md). A
 * failed simulation point renders as FAILED and makes the binary exit
 * nonzero.
 */

#include <cstdio>

#include "arch/area_model.hh"
#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps =
        static_cast<std::size_t>(cfg.getInt("steps", 8));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string benchName = cfg.getString("bench", "copy");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Section 7.3",
                         "Scaling the differentiable memory with HBM");

    arch::MannaConfig sramOnly = arch::MannaConfig::baseline16();
    arch::MannaConfig withHbm = sramOnly;
    withHbm.hasHbm = true;

    // Bandwidth feasibility check (the paper's worst-case argument).
    const double tileDemandBytesPerSec =
        static_cast<double>(sramOnly.numTiles) *
        static_cast<double>(sramOnly.emacsPerTile) * kWordBytes *
        sramOnly.clockMhz * 1e6;
    const double hbmSupplyBytesPerSec =
        withHbm.hbmBandwidthGBsPerModule * 1e9 *
        static_cast<double>(withHbm.hbmModules);

    Table table({"Design", "Area (mm^2)", "TDP (W)",
                 "Mem capacity", "DiffMem BW (GB/s)"});
    table.addRow({"Manna (SRAM only)",
                  strformat("%.0f", arch::areaOf(sramOnly).total()),
                  strformat("%.0f", arch::tdpWatts(sramOnly)),
                  formatBytes(sramOnly.totalOnChipBytes()),
                  strformat("%.0f",
                            sramOnly.aggregateMatrixBandwidthGBs())});
    table.addRow({"Manna + 4x HBM2",
                  strformat("%.0f", arch::areaOf(withHbm).total()),
                  strformat("%.0f", arch::tdpWatts(withHbm)),
                  "DRAM-resident",
                  strformat("%.0f", hbmSupplyBytesPerSec / 1e9)});
    harness::printTable(table);

    std::printf("\nworst-case tile demand: %.0f GB/s; HBM supply: "
                "%.0f GB/s (%s)\n",
                tileDemandBytesPerSec / 1e9, hbmSupplyBytesPerSec / 1e9,
                hbmSupplyBytesPerSec >= tileDemandBytesPerSec
                    ? "sufficient"
                    : "insufficient");

    // Energy-efficiency impact: scale the measured SRAM-only energy
    // ratios by the TDP growth (the paper's 122x -> ~17x argument:
    // same performance, higher power envelope).
    const auto &bench = workloads::benchmarkByName(benchName);
    std::vector<harness::SweepJob> sweep{
        {bench, sramOnly, steps, /*seed=*/1}};
    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    if (report.outcomes[0].ok) {
        const auto &manna = report.outcomes[0].value;
        const auto gpu =
            harness::evaluateBaseline(bench, harness::gpu1080Ti());
        const double sramRatio =
            gpu.joulesPerStep / manna.joulesPerStep;
        const double hbmWatts = arch::tdpWatts(withHbm);
        const double sramWatts = arch::tdpWatts(sramOnly);
        const double hbmRatio = sramRatio * (sramWatts / hbmWatts);
        std::printf("\nenergy-efficiency advantage over 1080-Ti (%s): "
                    "%.0fx (SRAM only) -> ~%.0fx (with HBM power "
                    "envelope)\n",
                    bench.name.c_str(), sramRatio, hbmRatio);
    } else {
        std::printf("\nenergy-efficiency advantage over 1080-Ti (%s): "
                    "FAILED\n",
                    bench.name.c_str());
    }
    harness::printPaperReference(
        "Section 7.3: 4 HBM2 modules feed all 16 tiles; area grows "
        "40 -> 180 mm^2, TDP 16 -> 116 W, and the average energy "
        "advantage drops from 122x to ~17x.");
    harness::applySweepObservability(cfg, "sec73_hbm_scaling",
                                     report);
    return harness::finishSweep(report);
}
