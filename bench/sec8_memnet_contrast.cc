/**
 * @file
 * Reproduces the Section 8 related-work contrast: why fixed-function
 * MemNet accelerators (MnnFast [22], the DATE'19 FPGA design [29])
 * are insufficient for NTM/DNC-class MANNs, and what Manna's
 * generality costs/buys.
 *
 * Quantifies the paper's two arguments:
 *  1. MemNets never soft-write, so element-wise write support is
 *     unnecessary there but critical for NTMs ("support for
 *     element-wise operations ... leads to speedups of 2.8x");
 *  2. MemNet memory is static per episode, so a transposed copy can
 *     be stored instead of transposing on chip — at 2x memory
 *     capacity — whereas the NTM memory updates every step, making
 *     the on-chip DMAT necessary ("on-chip transpose ... 1.4x").
 *
 * The MemHeavy ablation point is measured on the simulator through
 * the sweep harness (knobs: bench= [default copy], steps=, jobs=,
 * retries=/timeout=/journal=/resume=, progress=/stats=/bench_json=,
 * shards=); failed points render as FAILED and the binary exits
 * nonzero after the full output.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "mann/memnet.hh"
#include "mann/op_counter.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps =
        static_cast<std::size_t>(cfg.getInt("steps", 4));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner(
        "Section 8",
        "MemNet accelerators vs Manna: operation-profile contrast");

    // A MemN2N sized like the copy NTM's memory.
    mann::MemNetConfig mnCfg;
    mnCfg.numSentences = 1024;
    mnCfg.embedDim = 256;
    mnCfg.sentenceDim = 64;
    mnCfg.hops = 3;
    mann::MemNet memnet(mnCfg, 1);
    const auto mnWork = memnet.queryWork();

    const auto &copy = workloads::benchmarkByName(
        cfg.getString("bench", "copy"));
    const mann::OpCounter ntm(copy.config);
    const auto ntmWork = ntm.nonControllerWork();

    Table table({"Model", "MACs/step", "Elwise/step", "Elwise share",
                 "Soft-write ops", "Memory mutates?"});
    const double mnTotal = static_cast<double>(
        mnWork.macOps + mnWork.elwiseOps + mnWork.specialOps);
    table.addRow({"MemN2N (1024x256, 3 hops)",
                  strformat("%llu", (unsigned long long)mnWork.macOps),
                  strformat("%llu",
                            (unsigned long long)mnWork.elwiseOps),
                  formatPercent(static_cast<double>(mnWork.elwiseOps) /
                                mnTotal),
                  strformat("%llu",
                            (unsigned long long)mnWork.memWriteOps),
                  "no (episode-static)"});
    const double ntmTotal = static_cast<double>(
        ntmWork.macOps + ntmWork.elwiseOps + ntmWork.specialOps);
    const auto writeWork =
        ntm.kernelWork(mann::Kernel::SoftWrite);
    table.addRow({strformat("NTM %s (%zux%zu)", copy.name.c_str(),
                            copy.config.memN, copy.config.memM),
                  strformat("%llu",
                            (unsigned long long)ntmWork.macOps),
                  strformat("%llu",
                            (unsigned long long)ntmWork.elwiseOps),
                  formatPercent(static_cast<double>(ntmWork.elwiseOps) /
                                ntmTotal),
                  strformat("%llu",
                            (unsigned long long)writeWork.elwiseOps),
                  "yes (every step)"});
    harness::printTable(table);

    // Storage: transposed-copy strategy vs DMAT.
    const double memMiB =
        static_cast<double>(copy.config.memoryBytes()) /
        (1024.0 * 1024.0);
    std::printf(
        "\ntranspose strategies for both-direction access:\n"
        "  MemNet accelerators: store M and M^T   -> %.1f MiB "
        "(2x capacity; possible only because M is static)\n"
        "  Manna:               DMAT skew padding -> %.1f MiB + "
        "1/%zu scratchpad padding overhead (works with per-step "
        "writes)\n",
        2.0 * memMiB, memMiB,
        arch::MannaConfig().matrixBufferWidthWords);

    // What the NTM loses on a write-less, transpose-less design: the
    // Figure 14 ablation measured on the real simulator, executed
    // through the fault-isolated sweep harness.
    const std::vector<harness::SweepJob> sweep{
        {copy, arch::MannaConfig::baseline16(), steps, /*seed=*/1},
        {copy, arch::MannaConfig::memHeavy(), steps, /*seed=*/1}};
    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);
    if (report.outcomes[0].ok && report.outcomes[1].ok)
        std::printf("\nrunning the NTM on a MemNet-style design (no "
                    "eMAC, no DMAT) costs %.1fx in performance "
                    "(Figure 14's MemHeavy point).\n",
                    report.outcomes[1].value.secondsPerStep /
                        report.outcomes[0].value.secondsPerStep);
    else
        std::printf("\nrunning the NTM on a MemNet-style design (no "
                    "eMAC, no DMAT): FAILED\n");
    harness::printPaperReference(
        "Section 8: \"since MemNets do not require soft writes, these "
        "accelerators are not designed to support non-MAC operations\" "
        "and \"store a copy of the memory in its transposed form\"; "
        "the ablations attribute 2.8x to element-wise support and "
        "1.4x to on-chip transpose.");
    harness::applySweepObservability(cfg, "sec8_memnet_contrast",
                                     report);
    return harness::finishSweep(report);
}
