/**
 * @file
 * google-benchmark microbenchmarks of the reproduction's hot paths:
 * tensor primitives (the golden model's inner loops) and the
 * simulator's instruction interpreter. These measure *host*
 * performance of the simulator itself, not the modeled accelerator.
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.hh"
#include "mann/ntm.hh"
#include "sim/chip.hh"
#include "tensor/matrix.hh"
#include "tensor/vector_ops.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

namespace
{

tensor::FVec
randomVec(std::size_t n, Rng &rng)
{
    tensor::FVec v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return v;
}

void
BM_Dot(benchmark::State &state)
{
    Rng rng(1);
    const auto n = static_cast<std::size_t>(state.range(0));
    const tensor::FVec a = randomVec(n, rng);
    const tensor::FVec b = randomVec(n, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(tensor::dot(a, b));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(256)->Arg(4096);

void
BM_Softmax(benchmark::State &state)
{
    Rng rng(2);
    const auto n = static_cast<std::size_t>(state.range(0));
    const tensor::FVec a = randomVec(n, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(tensor::softmax(a, 2.0f));
}
BENCHMARK(BM_Softmax)->Arg(1024)->Arg(4096);

void
BM_RowCosineSimilarity(benchmark::State &state)
{
    Rng rng(3);
    const auto rows = static_cast<std::size_t>(state.range(0));
    tensor::FMat mem(rows, 128, randomVec(rows * 128, rng));
    const tensor::FVec key = randomVec(128, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tensor::rowCosineSimilarity(mem, key));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(rows * 128));
}
BENCHMARK(BM_RowCosineSimilarity)->Arg(512)->Arg(4096);

void
BM_GoldenNtmStep(benchmark::State &state)
{
    mann::MannConfig cfg;
    cfg.memN = static_cast<std::size_t>(state.range(0));
    cfg.memM = 64;
    cfg.controllerWidth = 64;
    cfg.inputDim = 8;
    cfg.outputDim = 8;
    mann::Ntm ntm(cfg, 1);
    const tensor::FVec x(cfg.inputDim, 0.1f);
    for (auto _ : state)
        benchmark::DoNotOptimize(ntm.step(x).output);
}
BENCHMARK(BM_GoldenNtmStep)->Arg(256)->Arg(1024);

void
BM_CompileModel(benchmark::State &state)
{
    const auto bench = workloads::tinyBenchmark();
    const arch::MannaConfig ac = arch::MannaConfig::withTiles(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            compiler::compile(bench.config, ac));
}
BENCHMARK(BM_CompileModel);

void
BM_SimulatedChipStep(benchmark::State &state)
{
    const auto bench = workloads::tinyBenchmark();
    const arch::MannaConfig ac = arch::MannaConfig::withTiles(4);
    const auto model = compiler::compile(bench.config, ac);
    sim::Chip chip(model, 1);
    const tensor::FVec x(bench.config.inputDim, 0.1f);
    for (auto _ : state)
        benchmark::DoNotOptimize(chip.step(x));
}
BENCHMARK(BM_SimulatedChipStep);

} // namespace

BENCHMARK_MAIN();
