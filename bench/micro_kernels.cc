/**
 * @file
 * Microbenchmarks of the reproduction's hot paths: tensor primitives
 * (the golden model's inner loops), the compiler, and the simulator's
 * instruction interpreter. These measure *host* performance of the
 * simulator itself, not the modeled accelerator.
 *
 * Self-timed (no external benchmark framework): each micro-bench
 * doubles its iteration count until the timed region exceeds
 * min_time= seconds (default 0.2), then reports ns/op. Execution goes
 * through the fault-isolated sweep harness, so bench=<name> filters,
 * jobs= (default 1 — concurrent timing perturbs results), and the
 * retries=/timeout=/stats=/bench_json= knobs all apply; a crashed or
 * failed micro-bench renders as a FAILED cell and makes the binary
 * exit nonzero. Timings are wall-clock measurements and are NOT
 * byte-identical across runs — only the table *structure* is stable.
 */

#include <chrono>
#include <cstdio>
#include <functional>

#include "common/config.hh"
#include "common/hash.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "mann/ntm.hh"
#include "sim/chip.hh"
#include "tensor/matrix.hh"
#include "tensor/vector_ops.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

namespace
{

/** Keep a computed value alive without spending time on it. */
template <typename T>
void
doNotOptimize(const T &value)
{
    asm volatile("" : : "g"(&value) : "memory");
}

tensor::FVec
randomVec(std::size_t n, Rng &rng)
{
    tensor::FVec v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return v;
}

/** One named micro-bench: body() runs the operation once. */
struct Micro
{
    std::string name;
    std::size_t itemsPerOp = 0; ///< 0 = no items/s column
    std::function<void()> body;
};

/**
 * Time @p body with geometric ramp-up: double the batch size until
 * one timed batch exceeds @p minSeconds, then report seconds per
 * operation from the final batch.
 */
double
secondsPerOp(const std::function<void()> &body, double minSeconds)
{
    using Clock = std::chrono::steady_clock;
    body(); // warm-up (page-in, caches, lazy init)
    for (std::size_t batch = 1;; batch *= 2) {
        const auto start = Clock::now();
        for (std::size_t i = 0; i < batch; ++i)
            body();
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        if (elapsed >= minSeconds || batch >= (1u << 30))
            return elapsed / static_cast<double>(batch);
    }
}

std::vector<Micro>
buildMicros()
{
    std::vector<Micro> micros;

    // Inputs are generated once per micro-bench (shared_ptr captured
    // by the body), so the timed region covers only the primitive.
    for (std::size_t n : {std::size_t{256}, std::size_t{4096}}) {
        Rng rng(1);
        auto a = std::make_shared<tensor::FVec>(randomVec(n, rng));
        auto b = std::make_shared<tensor::FVec>(randomVec(n, rng));
        micros.push_back({strformat("Dot/%zu", n), n, [a, b] {
                              doNotOptimize(tensor::dot(*a, *b));
                          }});
    }

    for (std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
        Rng rng(2);
        auto a = std::make_shared<tensor::FVec>(randomVec(n, rng));
        micros.push_back(
            {strformat("Softmax/%zu", n), n, [a] {
                 doNotOptimize(tensor::softmax(*a, 2.0f));
             }});
    }

    for (std::size_t rows : {std::size_t{512}, std::size_t{4096}}) {
        Rng rng(3);
        auto mem = std::make_shared<tensor::FMat>(
            rows, 128, randomVec(rows * 128, rng));
        auto key =
            std::make_shared<tensor::FVec>(randomVec(128, rng));
        micros.push_back(
            {strformat("RowCosineSimilarity/%zu", rows), rows * 128,
             [mem, key] {
                 doNotOptimize(
                     tensor::rowCosineSimilarity(*mem, *key));
             }});
    }

    for (std::size_t memN : {std::size_t{256}, std::size_t{1024}})
        micros.push_back({strformat("GoldenNtmStep/%zu", memN), 0,
                          [memN] {
                              mann::MannConfig cfg;
                              cfg.memN = memN;
                              cfg.memM = 64;
                              cfg.controllerWidth = 64;
                              cfg.inputDim = 8;
                              cfg.outputDim = 8;
                              static thread_local std::unique_ptr<
                                  mann::Ntm>
                                  ntm;
                              static thread_local std::size_t
                                  builtFor = 0;
                              if (!ntm || builtFor != memN) {
                                  ntm = std::make_unique<mann::Ntm>(
                                      cfg, 1);
                                  builtFor = memN;
                              }
                              const tensor::FVec x(cfg.inputDim,
                                                   0.1f);
                              doNotOptimize(ntm->step(x).output);
                          }});

    micros.push_back({"CompileModel", 0, [] {
                          const auto bench =
                              workloads::tinyBenchmark();
                          const arch::MannaConfig ac =
                              arch::MannaConfig::withTiles(4);
                          doNotOptimize(
                              compiler::compile(bench.config, ac));
                      }});

    micros.push_back(
        {"SimulatedChipStep", 0, [] {
             // The chip references the model, so both persist
             // together across timed iterations.
             static thread_local std::unique_ptr<
                 compiler::CompiledModel>
                 model;
             static thread_local std::unique_ptr<sim::Chip> chip;
             static thread_local tensor::FVec x;
             if (!chip) {
                 const auto bench = workloads::tinyBenchmark();
                 const arch::MannaConfig ac =
                     arch::MannaConfig::withTiles(4);
                 model = std::make_unique<compiler::CompiledModel>(
                     compiler::compile(bench.config, ac));
                 chip = std::make_unique<sim::Chip>(*model, 1);
                 x = tensor::FVec(bench.config.inputDim, 0.1f);
             }
             doNotOptimize(chip->step(x));
         }});

    return micros;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    // Timing micro-benches perturb each other when run concurrently,
    // so jobs= defaults to 1 here (unlike the simulation sweeps).
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 1));
    const std::string only = cfg.getString("bench", "");
    const double minSeconds =
        std::max(0.001, cfg.getDouble("min_time", 0.2));
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Microbenchmarks",
                         "Host performance of the simulator's hot "
                         "paths (not the modeled accelerator)");

    std::vector<Micro> micros;
    for (auto &m : buildMicros())
        if (only.empty() || m.name == only ||
            startsWith(m.name, only + "/"))
            micros.push_back(std::move(m));

    // Run through the fault-isolated harness: a micro-bench that
    // throws becomes a FAILED row instead of killing the binary. The
    // measured sec/op rides in MannaResult::secondsPerStep;
    // fingerprints are name-derived so stats=/bench_json= tally jobs
    // normally (journaling timings would be meaningless — don't pass
    // journal= here).
    std::vector<std::string> labels;
    std::vector<std::uint64_t> fingerprints;
    for (const Micro &m : micros) {
        labels.push_back(m.name);
        Fnv1a h;
        h.bytes(m.name.data(), m.name.size());
        fingerprints.push_back(h.value());
    }

    harness::SweepRunner runner(jobs);
    const auto report = runner.runIsolated(
        micros.size(),
        [&micros, minSeconds](std::size_t i, const CancelToken &) {
            harness::MannaResult r;
            r.secondsPerStep =
                secondsPerOp(micros[i].body, minSeconds);
            return r;
        },
        labels, fingerprints, opts);

    Table table({"Benchmark", "ns/op", "ops/s", "items/s"});
    for (std::size_t i = 0; i < micros.size(); ++i) {
        const auto &outcome = report.outcomes[i];
        if (!outcome.ok) {
            table.addRow({micros[i].name, "FAILED", "FAILED", "-"});
            continue;
        }
        const double sec = outcome.value.secondsPerStep;
        table.addRow(
            {micros[i].name, strformat("%.0f", sec * 1e9),
             strformat("%.0f", 1.0 / sec),
             micros[i].itemsPerOp == 0
                 ? "-"
                 : formatSig(static_cast<double>(
                                 micros[i].itemsPerOp) /
                                 sec,
                             3)});
    }
    harness::printTable(table);
    harness::applySweepObservability(cfg, "micro_kernels", report);
    return harness::finishSweep(report);
}
