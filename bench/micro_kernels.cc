/**
 * @file
 * Microbenchmarks of the reproduction's hot paths: tensor primitives
 * (the golden model's inner loops), the compiler, and the simulator's
 * instruction interpreter. These measure *host* performance of the
 * simulator itself, not the modeled accelerator.
 *
 * Self-timed (no external benchmark framework): each micro-bench
 * doubles its iteration count until the timed region exceeds
 * min_time= seconds (default 0.2), then reports ns/op. Execution goes
 * through the fault-isolated sweep harness, so bench=<name> filters,
 * jobs= (default 1 — concurrent timing perturbs results), and the
 * retries=/timeout=/stats=/bench_json= knobs all apply; a crashed or
 * failed micro-bench renders as a FAILED cell and makes the binary
 * exit nonzero. Timings are wall-clock measurements and are NOT
 * byte-identical across runs — only the table *structure* is stable
 * (that structure is what bench/baselines/BENCH_micro_kernels.json
 * pins).
 *
 * The Kernel/<op>/{scalar,dispatch} rows time every entry of the SIMD
 * kernel table (tensor/dispatch.hh) through the scalar reference and
 * the runtime-dispatched path side by side, reporting effective GB/s
 * and GFLOP/s; the dispatch rows honor MANNA_SIMD. Row names say
 * "dispatch" rather than the selected level so the table structure is
 * identical on every host; the selected level is printed above the
 * table.
 */

#include <chrono>
#include <cstdio>
#include <functional>

#include "common/config.hh"
#include "common/hash.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "mann/ntm.hh"
#include "sim/chip.hh"
#include "tensor/dispatch.hh"
#include "tensor/matrix.hh"
#include "tensor/vector_ops.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

namespace
{

/** Keep a computed value alive without spending time on it. */
template <typename T>
void
doNotOptimize(const T &value)
{
    asm volatile("" : : "g"(&value) : "memory");
}

tensor::FVec
randomVec(std::size_t n, Rng &rng)
{
    tensor::FVec v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return v;
}

/** One named micro-bench: body() runs the operation once. */
struct Micro
{
    std::string name;
    std::size_t itemsPerOp = 0; ///< 0 = no items/s column
    std::size_t bytesPerOp = 0; ///< floats streamed * 4; 0 = no GB/s
    std::size_t flopsPerOp = 0; ///< 0 = no GFLOP/s column
    std::function<void()> body;
};

/**
 * Time @p body with geometric ramp-up: double the batch size until
 * one timed batch exceeds @p minSeconds, then report seconds per
 * operation from the final batch.
 */
double
secondsPerOp(const std::function<void()> &body, double minSeconds)
{
    using Clock = std::chrono::steady_clock;
    body(); // warm-up (page-in, caches, lazy init)
    for (std::size_t batch = 1;; batch *= 2) {
        const auto start = Clock::now();
        for (std::size_t i = 0; i < batch; ++i)
            body();
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        if (elapsed >= minSeconds || batch >= (1u << 30))
            return elapsed / static_cast<double>(batch);
    }
}

/**
 * Kernel/<op>/{scalar,dispatch} micros: every entry of the SIMD
 * kernel table timed through the scalar reference and the dispatched
 * path on identical inputs. bytesPerOp counts streamed floats * 4
 * (reads + writes, read-modify-write destinations twice); flopsPerOp
 * counts arithmetic ops, with compares counted for the max pass.
 */
void
addKernelMicros(std::vector<Micro> &micros)
{
    constexpr std::size_t n = 4096;
    constexpr std::size_t taps = 3; // shiftRadius 1, the common case

    Rng rng(7);
    auto a = std::make_shared<tensor::FVec>(randomVec(n, rng));
    auto b = std::make_shared<tensor::FVec>(randomVec(n, rng));
    auto shift = std::make_shared<tensor::FVec>(randomVec(taps, rng));
    auto out = std::make_shared<tensor::FVec>(n, 0.0f);

    const struct
    {
        const char *name;
        const tensor::simd::KernelTable *table;
    } paths[] = {
        {"scalar", &tensor::simd::scalarKernels()},
        {"dispatch", &tensor::simd::kernels()},
    };

    for (const auto &path : paths) {
        const tensor::simd::KernelTable *k = path.table;
        const auto name = [&path](const char *op) {
            return strformat("Kernel/%s/%s", op, path.name);
        };
        micros.push_back({name("add"), n, 3 * n * sizeof(float), n,
                          [k, a, b, out] {
                              k->add(a->data(), b->data(),
                                     out->data(), n);
                              doNotOptimize((*out)[0]);
                          }});
        micros.push_back({name("mul"), n, 3 * n * sizeof(float), n,
                          [k, a, b, out] {
                              k->mul(a->data(), b->data(),
                                     out->data(), n);
                              doNotOptimize((*out)[0]);
                          }});
        micros.push_back({name("mac"), n, 4 * n * sizeof(float),
                          2 * n, [k, a, b, out] {
                              k->mac(a->data(), b->data(),
                                     out->data(), n);
                              doNotOptimize((*out)[0]);
                          }});
        micros.push_back({name("scale"), n, 2 * n * sizeof(float), n,
                          [k, a, out] {
                              k->scale(a->data(), 1.0000001f,
                                       out->data(), n);
                              doNotOptimize((*out)[0]);
                          }});
        micros.push_back({name("axpy"), n, 3 * n * sizeof(float),
                          2 * n, [k, a, out] {
                              k->axpy(0.5f, a->data(), out->data(),
                                      n);
                              doNotOptimize((*out)[0]);
                          }});
        micros.push_back({name("sum"), n, n * sizeof(float), n,
                          [k, a] {
                              doNotOptimize(k->sum(a->data(), n));
                          }});
        micros.push_back({name("dot"), n, 2 * n * sizeof(float),
                          2 * n, [k, a, b] {
                              doNotOptimize(
                                  k->dot(a->data(), b->data(), n));
                          }});
        micros.push_back({name("dotNorm"), n, 2 * n * sizeof(float),
                          4 * n, [k, a, b] {
                              float d = 0.0f, nrm = 0.0f;
                              k->dotNorm(a->data(), b->data(), n, &d,
                                         &nrm);
                              doNotOptimize(d);
                              doNotOptimize(nrm);
                          }});
        micros.push_back({name("scaleMax"), n, 2 * n * sizeof(float),
                          2 * n, [k, a, out] {
                              doNotOptimize(k->scaleMax(
                                  a->data(), 2.0f, out->data(), n));
                          }});
        micros.push_back({name("circularConvolve"), n,
                          2 * n * sizeof(float), 2 * taps * n,
                          [k, a, shift, out] {
                              k->circularConvolve(a->data(), n,
                                                  shift->data(), taps,
                                                  out->data());
                              doNotOptimize((*out)[0]);
                          }});
    }
}

std::vector<Micro>
buildMicros()
{
    std::vector<Micro> micros;

    addKernelMicros(micros);

    // Inputs are generated once per micro-bench (shared_ptr captured
    // by the body), so the timed region covers only the primitive.
    for (std::size_t n : {std::size_t{256}, std::size_t{4096}}) {
        Rng rng(1);
        auto a = std::make_shared<tensor::FVec>(randomVec(n, rng));
        auto b = std::make_shared<tensor::FVec>(randomVec(n, rng));
        micros.push_back({strformat("Dot/%zu", n), n,
                          2 * n * sizeof(float), 2 * n, [a, b] {
                              doNotOptimize(tensor::dot(*a, *b));
                          }});
    }

    for (std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
        Rng rng(2);
        auto a = std::make_shared<tensor::FVec>(randomVec(n, rng));
        micros.push_back(
            {strformat("Softmax/%zu", n), n, 0, 0, [a] {
                 doNotOptimize(tensor::softmax(*a, 2.0f));
             }});
    }

    for (std::size_t rows : {std::size_t{512}, std::size_t{4096}}) {
        Rng rng(3);
        auto mem = std::make_shared<tensor::FMat>(
            rows, 128, randomVec(rows * 128, rng));
        auto key =
            std::make_shared<tensor::FVec>(randomVec(128, rng));
        micros.push_back(
            {strformat("RowCosineSimilarity/%zu", rows), rows * 128,
             rows * 128 * sizeof(float), rows * 128 * 4,
             [mem, key] {
                 doNotOptimize(
                     tensor::rowCosineSimilarity(*mem, *key));
             }});
    }

    for (std::size_t memN : {std::size_t{256}, std::size_t{1024}})
        micros.push_back({strformat("GoldenNtmStep/%zu", memN), 0, 0,
                          0, [memN] {
                              mann::MannConfig cfg;
                              cfg.memN = memN;
                              cfg.memM = 64;
                              cfg.controllerWidth = 64;
                              cfg.inputDim = 8;
                              cfg.outputDim = 8;
                              static thread_local std::unique_ptr<
                                  mann::Ntm>
                                  ntm;
                              static thread_local std::size_t
                                  builtFor = 0;
                              if (!ntm || builtFor != memN) {
                                  ntm = std::make_unique<mann::Ntm>(
                                      cfg, 1);
                                  builtFor = memN;
                              }
                              const tensor::FVec x(cfg.inputDim,
                                                   0.1f);
                              doNotOptimize(ntm->step(x).output);
                          }});

    micros.push_back({"CompileModel", 0, 0, 0, [] {
                          const auto bench =
                              workloads::tinyBenchmark();
                          const arch::MannaConfig ac =
                              arch::MannaConfig::withTiles(4);
                          doNotOptimize(
                              compiler::compile(bench.config, ac));
                      }});

    micros.push_back(
        {"SimulatedChipStep", 0, 0, 0, [] {
             // The chip references the model, so both persist
             // together across timed iterations.
             static thread_local std::unique_ptr<
                 compiler::CompiledModel>
                 model;
             static thread_local std::unique_ptr<sim::Chip> chip;
             static thread_local tensor::FVec x;
             if (!chip) {
                 const auto bench = workloads::tinyBenchmark();
                 const arch::MannaConfig ac =
                     arch::MannaConfig::withTiles(4);
                 model = std::make_unique<compiler::CompiledModel>(
                     compiler::compile(bench.config, ac));
                 chip = std::make_unique<sim::Chip>(*model, 1);
                 x = tensor::FVec(bench.config.inputDim, 0.1f);
             }
             doNotOptimize(chip->step(x));
         }});

    return micros;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    // Timing micro-benches perturb each other when run concurrently,
    // so jobs= defaults to 1 here (unlike the simulation sweeps).
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 1));
    const std::string only = cfg.getString("bench", "");
    const double minSeconds =
        std::max(0.001, cfg.getDouble("min_time", 0.2));
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Microbenchmarks",
                         "Host performance of the simulator's hot "
                         "paths (not the modeled accelerator)");
    std::printf("SIMD dispatch: %s (override with "
                "MANNA_SIMD=scalar|avx2|neon)\n\n",
                tensor::simd::kernels().name);

    std::vector<Micro> micros;
    for (auto &m : buildMicros())
        if (only.empty() || m.name == only ||
            startsWith(m.name, only + "/"))
            micros.push_back(std::move(m));

    // Run through the fault-isolated harness: a micro-bench that
    // throws becomes a FAILED row instead of killing the binary. The
    // measured sec/op rides in MannaResult::secondsPerStep;
    // fingerprints are name-derived so stats=/bench_json= tally jobs
    // normally (journaling timings would be meaningless — don't pass
    // journal= here).
    std::vector<std::string> labels;
    std::vector<std::uint64_t> fingerprints;
    for (const Micro &m : micros) {
        labels.push_back(m.name);
        Fnv1a h;
        h.bytes(m.name.data(), m.name.size());
        fingerprints.push_back(h.value());
    }

    harness::SweepRunner runner(jobs);
    const auto report = runner.runIsolated(
        micros.size(),
        [&micros, minSeconds](std::size_t i, const CancelToken &) {
            harness::MannaResult r;
            r.secondsPerStep =
                secondsPerOp(micros[i].body, minSeconds);
            return r;
        },
        labels, fingerprints, opts);

    Table table(
        {"Benchmark", "ns/op", "ops/s", "items/s", "GB/s", "GFLOP/s"});
    for (std::size_t i = 0; i < micros.size(); ++i) {
        const auto &outcome = report.outcomes[i];
        if (!outcome.ok) {
            table.addRow(
                {micros[i].name, "FAILED", "FAILED", "-", "-", "-"});
            continue;
        }
        const double sec = outcome.value.secondsPerStep;
        const auto perSec = [sec](std::size_t perOp) {
            return perOp == 0
                       ? std::string("-")
                       : formatSig(static_cast<double>(perOp) / sec /
                                       1e9,
                                   3);
        };
        table.addRow(
            {micros[i].name, strformat("%.0f", sec * 1e9),
             strformat("%.0f", 1.0 / sec),
             micros[i].itemsPerOp == 0
                 ? "-"
                 : formatSig(static_cast<double>(
                                 micros[i].itemsPerOp) /
                                 sec,
                             3),
             perSec(micros[i].bytesPerOp),
             perSec(micros[i].flopsPerOp)});
    }
    harness::printTable(table);
    harness::applySweepObservability(cfg, "micro_kernels", report);
    return harness::finishSweep(report);
}
