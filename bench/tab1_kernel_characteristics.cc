/**
 * @file
 * Reproduces Table 1: per-kernel key primitive, asymptotic memory
 * accesses, FLOPs/Byte, and reduction direction — plus measured
 * numeric values for the selected benchmark's shape (bench=, default
 * copy) and the kernel group's simulated cycles/step at the paper's
 * 16-tile configuration.
 *
 * The simulated column runs through the sweep harness, so the usual
 * knobs apply (steps=, jobs=, retries=/timeout=/journal=/resume=,
 * progress=/stats=/bench_json=, shards=); a failed simulation renders
 * as FAILED cells and makes the binary exit nonzero.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "mann/op_counter.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps =
        static_cast<std::size_t>(cfg.getInt("steps", 4));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Table 1",
                         "Summary of kernels in the Neural Turing "
                         "Machine");

    const auto &copy = workloads::benchmarkByName(
        cfg.getString("bench", "copy"));
    const mann::OpCounter counter(copy.config);

    // The measured per-group cycle column comes from the simulator at
    // the paper's 16-tile point, via the fault-isolated sweep runner.
    const std::vector<harness::SweepJob> sweep{
        {copy, arch::MannaConfig::baseline16(), steps, /*seed=*/1}};
    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);
    const auto &outcome = report.outcomes[0];

    Table table({"Kernel", "Key Primitive", "Mem. Accesses",
                 "FLOPs/Byte", "Reduction",
                 strformat("Measured FLOPs/B (%s)", copy.name.c_str()),
                 "Group cycles/step (16T)"});
    for (mann::Kernel k : mann::allKernels()) {
        if (k == mann::Kernel::Controller)
            continue; // Table 1 lists the MANN-specific kernels
        const mann::KernelWork work = counter.kernelWork(k);
        std::string cycles = "FAILED";
        if (outcome.ok) {
            const auto &groups = outcome.value.report.groups;
            const auto it = groups.find(mann::groupOf(k));
            cycles = it == groups.end()
                         ? "-"
                         : strformat("%.0f",
                                     static_cast<double>(
                                         it->second.cycles) /
                                         static_cast<double>(steps));
        }
        table.addRow({toString(k),
                      mann::OpCounter::primitiveName(k),
                      mann::OpCounter::accessExpression(k),
                      mann::OpCounter::symbolicFlopsPerByte(k),
                      mann::OpCounter::reductionDirection(k),
                      strformat("%.2f", work.flopsPerByte()),
                      cycles});
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Table 1: access kernels are O(Mn*Mm*heads) with FLOPs/Byte of "
        "only Hr/Hw/Hr+Hw; addressing kernels are O(Mn*heads) with "
        "FLOPs/Byte of 2-3; key similarity reduces row-wise and soft "
        "read column-wise.");
    harness::applySweepObservability(cfg, "tab1_kernel_characteristics",
                                     report);
    return harness::finishSweep(report);
}
