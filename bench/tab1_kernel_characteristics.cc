/**
 * @file
 * Reproduces Table 1: per-kernel key primitive, asymptotic memory
 * accesses, FLOPs/Byte, and reduction direction — plus measured
 * numeric values for the copy benchmark's shape.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/report.hh"
#include "mann/op_counter.hh"
#include "workloads/benchmarks.hh"

using namespace manna;

int
main()
{
    harness::printBanner("Table 1",
                         "Summary of kernels in the Neural Turing "
                         "Machine");

    const auto &copy = workloads::benchmarkByName("copy");
    const mann::OpCounter counter(copy.config);

    Table table({"Kernel", "Key Primitive", "Mem. Accesses",
                 "FLOPs/Byte", "Reduction", "Measured FLOPs/B (copy)"});
    for (mann::Kernel k : mann::allKernels()) {
        if (k == mann::Kernel::Controller)
            continue; // Table 1 lists the MANN-specific kernels
        const mann::KernelWork work = counter.kernelWork(k);
        table.addRow({toString(k),
                      mann::OpCounter::primitiveName(k),
                      mann::OpCounter::accessExpression(k),
                      mann::OpCounter::symbolicFlopsPerByte(k),
                      mann::OpCounter::reductionDirection(k),
                      strformat("%.2f", work.flopsPerByte())});
    }
    harness::printTable(table);
    harness::printPaperReference(
        "Table 1: access kernels are O(Mn*Mm*heads) with FLOPs/Byte of "
        "only Hr/Hw/Hr+Hw; addressing kernels are O(Mn*heads) with "
        "FLOPs/Byte of 2-3; key similarity reduces row-wise and soft "
        "read column-wise.");
    return 0;
}
