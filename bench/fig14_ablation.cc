/**
 * @file
 * Reproduces Figure 14: impact of Manna's architectural features.
 * Compares Manna against MemHeavy (no transpose hardware, no eMACs),
 * MemHeavy-Transpose (adds the DMAT), and MemHeavy-eMAC (adds the
 * eMAC units) across the benchmark suite.
 *
 * Paper headline: Manna is 2x-4x (3.3x average) faster than
 * MemHeavy, and 2.3x / 1.8x faster than the transpose-only and
 * eMAC-only variants respectively; the discussion attributes ~2.8x
 * to element-wise support and ~1.4x to on-chip transpose.
 */

#include <cstdio>

#include "baselines/ablation.hh"
#include "common/config.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace manna;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t steps = static_cast<std::size_t>(
        cfg.getInt("steps", static_cast<std::int64_t>(
                                harness::defaultSteps())));
    const std::size_t jobs =
        static_cast<std::size_t>(cfg.getInt("jobs", 0));
    const std::string only = cfg.getString("bench", "");
    const harness::SweepOptions opts =
        harness::sweepOptionsFromConfig(cfg);

    harness::printBanner("Figure 14",
                         "Impact of Manna's architectural features "
                         "(speedup over MemHeavy)");

    const auto variants = baselines::figure14Variants();
    Table table({"Benchmark", "MemHeavy", "MemHeavy-Transpose",
                 "MemHeavy-eMAC", "Manna"});
    std::map<std::string, std::vector<double>> speedups;

    std::vector<workloads::Benchmark> suite;
    for (const auto &bench : workloads::table2Suite())
        if (only.empty() || bench.name == only)
            suite.push_back(bench);

    std::vector<harness::SweepJob> sweep;
    for (const auto &bench : suite)
        for (const auto &variant : variants)
            sweep.push_back({bench, variant.config, steps, /*seed=*/1});

    harness::SweepRunner runner(jobs);
    const auto report = runner.runChecked(sweep, opts);

    std::size_t next = 0;
    for (const auto &bench : suite) {
        std::map<std::string, double> seconds;
        bool ok = true;
        for (const auto &variant : variants) {
            const auto &outcome = report.outcomes[next++];
            if (!outcome.ok)
                ok = false;
            else
                seconds[variant.name] = outcome.value.secondsPerStep;
        }
        std::vector<std::string> row{bench.name};
        for (const auto &variant : variants) {
            if (!ok || seconds[variant.name] <= 0.0) {
                row.push_back("FAILED");
                continue;
            }
            const double factor =
                seconds["MemHeavy"] / seconds[variant.name];
            speedups[variant.name].push_back(factor);
            row.push_back(formatFactor(factor));
        }
        table.addRow(std::move(row));
    }
    harness::printTable(table);

    std::printf("\n");
    for (const auto &variant : variants)
        std::printf("%s\n",
                    harness::summarizeFactors(variant.name,
                                              speedups[variant.name])
                        .c_str());
    harness::printPaperReference(
        "Figure 14: Manna achieves 2x-4x (3.3x average) over MemHeavy "
        "and 2.3x / 1.8x over the transpose-only / eMAC-only "
        "variants.");
    harness::applySweepObservability(cfg, "fig14_ablation", report);
    return harness::finishSweep(report);
}
